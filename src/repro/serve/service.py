"""QueryService: many queries, one simulated device.

The serving model extends the paper's resource-sharing story one level
up.  Within a query, GPL's kernels share the device's concurrent-kernel
slots (Section 5's C) and its memory; across queries, the service
partitions exactly those two resources between the members of each
admission round:

* every query in a round of ``k`` gets ``max(1, C // k)`` kernel slots —
  its segments pipeline within the partition, and the per-query slowdown
  from losing slots is the simulated cost of co-residency;
* the shared memory budget is split evenly, and each partition is
  enforced by the *per-query* admission control of
  :class:`~repro.core.ResilientExecutor` (shrink down the Δ ladder,
  typed rejection at the floor).

A round's simulated makespan is the maximum of its members' execution
times — members run concurrently — and rounds execute in sequence, so a
query's service latency is the virtual time spent waiting for its round
plus its own execution time.

Repeat traffic is fast because planning is cached at three levels: the
plan cache (optimization + lowering, keyed by query/database/device/
config), the memoized configuration search, and the per-device Γ table
(:mod:`repro.model`).  All three expose hit/miss counters, reported
per drain on the :class:`~repro.serve.report.ServiceReport`.

Two further levels cache *executed* work (both opt-in; the serve CLI
enables them by default):

* a :class:`~repro.serve.caches.ResultCache` consulted before
  admission — a hit answers the query with outcome ``cached`` at zero
  admission cost, bypassing scheduling and execution entirely;
* a cross-query :class:`~repro.core.checkpoint.SegmentCache` attached
  to every engine the service builds, so distinct queries sharing a
  lowered segment prefix resume from materialized segment outputs.

``batch_dedupe=True`` adds shared-scan batched admission: each drain
executes one representative of every set of identical pending specs
(fanning the result out to the duplicates, marked ``deduped``) and
groups same-fact-table queries into admission rounds so a round
amortizes one scan of the fact across its members.

Everything is deterministic: same database seed, same trace, same fault
plan => identical schedule, identical results, identical report
counters (given the same starting cache state; see ``docs/serving.md``).
"""

from __future__ import annotations

from collections import Counter as _Counter
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..cancel import CancellationToken
from ..core import (
    CheckpointStore,
    GPLConfig,
    GPLEngine,
    PoolTask,
    QueryResult,
    ResilientExecutor,
    WorkerPool,
)
from ..core.checkpoint import segment_cache_keys
from ..errors import DeadlineExceededError, ExecutionError, ReproError
from ..faults import FaultInjector, FaultPlan
from ..gpu import DeviceSpec
from ..model import (
    ConfigurationSearch,
    calibrate_channels,
    calibration_cache_stats,
    plan_cost_inputs,
    search_cache_stats,
)
from ..obs import DriftRecorder, MetricsRegistry
from ..obs.tracing import add_event, current_tracer, maybe_span
from ..plans import QuerySpec, spec_fingerprint
from ..relational import Database
from ..shard import DevicePool, ShardedExecutor
from .breaker import CircuitBreaker, breaker_states
from .caches import PlanCache, ResultCache, SegmentCache
from .report import QueryRecord, ServiceReport
from .scheduler import ScheduledQuery, Scheduler

__all__ = ["QueryService", "QUEUE_POLICIES"]

#: Backpressure policies for the bounded admission queue: ``reject``
#: sheds the *arriving* query, ``shed-oldest`` drops the oldest queued
#: ticket to make room (freshness-biased serving).
QUEUE_POLICIES: Tuple[str, ...] = ("reject", "shed-oldest")


def _stats_delta(after: Dict[str, int], before: Dict[str, int]) -> Dict[str, int]:
    return {key: after.get(key, 0) - before.get(key, 0) for key in after}


def _cache_delta(
    after: Dict[str, int], before: Dict[str, int]
) -> Dict[str, int]:
    """Per-drain cache counters: deltas for the monotonic counters,
    current values for the occupancy (``live_*``/``peak_*``) entries."""
    delta = _stats_delta(after, before)
    for key in after:
        if key.startswith(("live_", "peak_")):
            delta[key] = after[key]
    return delta


@dataclass
class _InflightMember:
    """One admission-round member between its arrival and its commit.

    Arrival (breaker admission) runs on the drain thread in member
    order; execution runs on the worker pool; commit — settlement,
    records, trace grafting — runs on the drain thread, again strictly
    in member order.  ``pending`` holds the arrival phase's metric
    increments and span events, replayed verbatim at commit so the
    exported trace and registry are byte-identical at any worker count.
    """

    query: ScheduledQuery
    scopes: List[Tuple[str, Optional[CircuitBreaker]]]
    degraded_scopes: set
    #: ``("degraded" | "transitions", scope label, drained states)``.
    pending: List[Tuple[str, str, Tuple[str, ...]]]
    #: Conflict keys: members whose keys intersect never overlap.
    keys: FrozenSet[Tuple[str, str]] = frozenset()
    task: Optional[PoolTask] = None


class QueryService:
    """Accepts many queries and serves them from one simulated device.

    Two submission paths share the same machinery:

    * :meth:`submit` — synchronous: execute now (a round of one, full
      slots and budget) and return the :class:`QueryResult`;
    * :meth:`enqueue` + :meth:`drain` — asynchronous: queue tickets, then
      schedule and execute the whole backlog concurrently and return a
      :class:`ServiceReport`.  Results stay retrievable by ticket via
      :meth:`result_for`.
    """

    def __init__(
        self,
        database: Database,
        device: DeviceSpec,
        config: Optional[GPLConfig] = None,
        policy: str = "fifo",
        max_concurrent: int = 4,
        memory_budget_bytes: Optional[float] = None,
        resilient: bool = True,
        fault_plan: Optional[FaultPlan] = None,
        max_retries: int = 2,
        partitioned_joins: bool = False,
        plan_cache: Optional[PlanCache] = None,
        tuned: bool = False,
        registry: Optional[MetricsRegistry] = None,
        default_deadline_cycles: Optional[float] = None,
        breaker_threshold: Optional[int] = 3,
        breaker_cooldown: int = 2,
        breaker_probes: int = 1,
        max_pending: Optional[int] = None,
        queue_policy: str = "reject",
        checkpoint_store: Optional[CheckpointStore] = None,
        pool: Optional[DevicePool] = None,
        result_cache: Optional[ResultCache] = None,
        result_cache_bytes: Optional[int] = None,
        segment_cache: Optional[SegmentCache] = None,
        segment_cache_bytes: Optional[int] = None,
        batch_dedupe: bool = False,
        workers: int = 1,
        max_relocations: int = 2,
        quarantine_threshold: int = 2,
        quarantine_cooldown: int = 2,
        quarantine_probes: int = 1,
    ):
        if queue_policy not in QUEUE_POLICIES:
            raise ExecutionError(
                f"unknown queue policy {queue_policy!r}; "
                f"expected one of {QUEUE_POLICIES}"
            )
        if max_pending is not None and max_pending < 1:
            raise ExecutionError("max_pending must be at least 1")
        if pool is not None and tuned:
            raise ExecutionError(
                "tuned mode is single-device: per-segment configs are "
                "searched against one device, not a pool"
            )
        self.database = database
        self.device = device
        self.config = config or GPLConfig()
        self.scheduler = Scheduler(policy)
        self.max_concurrent = max(1, max_concurrent)
        #: Multi-device mode: when a :class:`~repro.shard.DevicePool` is
        #: attached, every query scatter-gathers across it instead of
        #: running on ``device`` (which remains the planning/estimation
        #: device).  Admission rounds are then sized by the *tightest*
        #: device budget — each round member gets a share of every
        #: device, so the constraining device governs.
        self.pool = pool
        #: Whether the admission budget was pinned by the caller; an
        #: implicit pooled budget re-derives from the *active* (non-
        #: quarantined) slots at each drain.
        self._explicit_budget = memory_budget_bytes is not None
        if memory_budget_bytes is not None:
            self.memory_budget_bytes = float(memory_budget_bytes)
        elif pool is not None:
            self.memory_budget_bytes = min(
                slot.effective_budget_bytes for slot in pool
            )
        else:
            self.memory_budget_bytes = float(device.global_mem_bytes)
        self.resilient = resilient
        self.fault_plan = fault_plan
        self.max_retries = max_retries
        self.partitioned_joins = partitioned_joins
        self.plan_cache = plan_cache if plan_cache is not None else PlanCache()
        #: ``tuned`` runs every query with the cost model's per-segment
        #: optimal configs (Section 4.1's search) instead of the service's
        #: single baseline config — the serving twin of
        #: :meth:`repro.bench.runner.ExperimentContext.optimized_gpl`.
        self.tuned = tuned
        #: Metrics registry every drain reports into; share one across
        #: services to aggregate, or read ``service.registry`` after.
        self.registry = registry if registry is not None else MetricsRegistry()
        #: Predicted-vs-measured cycles per completed query (Figs 11/24
        #: from live telemetry); feeds ``model_drift_*`` metrics.
        self.drift = DriftRecorder(registry=self.registry)
        #: Service-level deadline applied to every query whose spec does
        #: not carry its own ``deadline_cycles``.
        self.default_deadline_cycles = default_deadline_cycles
        #: Circuit-breaker tuning; ``breaker_threshold=None`` (or the
        #: non-resilient mode, which has no fallback chain to protect)
        #: disables breakers entirely.
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown
        self.breaker_probes = breaker_probes
        self._breakers: Dict[str, CircuitBreaker] = {}
        #: Bounded admission queue: ``None`` keeps the historical
        #: unbounded behaviour.
        self.max_pending = max_pending
        self.queue_policy = queue_policy
        #: Shared segment-checkpoint pool, bounded service-wide; every
        #: resilient execution resumes retries through it.
        self.checkpoint_store = (
            checkpoint_store if checkpoint_store is not None
            else CheckpointStore()
        )
        #: Whole-result cache consulted before admission (see module
        #: doc).  Opt-in: pass an instance, or a byte budget to build
        #: one; ``None`` (the default) leaves results uncached so
        #: existing traces keep their exact schedules.
        self.result_cache = (
            result_cache
            if result_cache is not None
            else (
                ResultCache(result_cache_bytes)
                if result_cache_bytes
                else None
            )
        )
        #: Cross-query segment cache attached to every engine the
        #: service builds (opt-in, same convention as above).
        self.segment_cache = (
            segment_cache
            if segment_cache is not None
            else (
                SegmentCache(max_bytes=segment_cache_bytes)
                if segment_cache_bytes
                else None
            )
        )
        #: Shared-scan batched admission: dedupe identical pending
        #: specs per drain and group same-fact-table queries into
        #: admission rounds.
        self.batch_dedupe = batch_dedupe
        #: Host-side parallelism: each admission round's members drain
        #: on this pool (``workers=1`` is the exact sequential path).
        #: The internal sharded executor gets its *own* same-width pool:
        #: a bounded pool's task must never block on a subtask submitted
        #: to the same pool (``ThreadPoolExecutor`` does no
        #: work-stealing), and a pooled service's round members block on
        #: their shard scatters.
        self.worker_pool = WorkerPool(workers, name="repro-serve")
        #: Ticket -> result for every completed query this service ran.
        self.results: Dict[int, QueryResult] = {}
        self._queue: List[Tuple[int, QuerySpec, Optional[FaultPlan]]] = []
        self._shed: List[Tuple[int, QuerySpec]] = []
        self._next_ticket = 0
        self._search: Optional[ConfigurationSearch] = None
        self._sharded: Optional[ShardedExecutor] = None
        if pool is not None:
            self._sharded = ShardedExecutor(
                database,
                pool,
                config=self.config,
                resilient=resilient,
                fault_plans=fault_plan,
                max_retries=max_retries,
                partitioned_joins=partitioned_joins,
                plan_cache=self.plan_cache,
                deadline_cycles=default_deadline_cycles,
                checkpoint_store=self.checkpoint_store,
                segment_cache=self.segment_cache,
                workers=workers,
                max_relocations=max_relocations,
                quarantine_threshold=quarantine_threshold,
                quarantine_cooldown=quarantine_cooldown,
                quarantine_probes=quarantine_probes,
            )

    # -- submission -------------------------------------------------------

    @property
    def pending(self) -> int:
        """Queued-but-not-yet-drained query count."""
        return len(self._queue)

    @property
    def workers(self) -> int:
        """Worker threads draining each admission round (1 = sequential)."""
        return self.worker_pool.workers

    def enqueue(
        self, spec: QuerySpec, fault_plan: Optional[FaultPlan] = None
    ) -> int:
        """Queue a query; returns its ticket (the submission index).

        ``fault_plan`` overrides the service-wide plan for this query
        only (chaos harnesses use it to vary schedules per query).  When
        the queue is bounded (``max_pending``) and full, backpressure
        applies: ``reject`` sheds the arriving query, ``shed-oldest``
        drops the oldest queued ticket instead.  Shed queries are never
        executed; they surface in the next drain's report with outcome
        ``shed`` (and in :attr:`results` not at all).
        """
        ticket = self._next_ticket
        self._next_ticket += 1
        if (
            self.max_pending is not None
            and len(self._queue) >= self.max_pending
        ):
            if self.queue_policy == "reject":
                self._shed.append((ticket, spec))
                add_event(
                    "serve.shed", query=spec.name, ticket=ticket,
                    policy=self.queue_policy,
                )
                return ticket
            oldest = self._queue.pop(0)
            self._shed.append((oldest[0], oldest[1]))
            add_event(
                "serve.shed", query=oldest[1].name, ticket=oldest[0],
                policy=self.queue_policy,
            )
        self._queue.append((ticket, spec, fault_plan))
        return ticket

    def submit(self, spec: QuerySpec) -> QueryResult:
        """Execute one query now, bypassing the queue (sync path).

        The query still flows through every cache, so a warmed service
        answers synchronous traffic without re-planning; it runs alone,
        so it gets the full device.  The sync path bypasses the bounded
        queue too — backpressure is a property of the backlog.
        """
        ticket = self._next_ticket
        self._next_ticket += 1
        self._drain_batch([(ticket, spec, None)])
        result = self.results.get(ticket)
        if result is None:
            raise self._last_error  # failure of a sync submit propagates
        return result

    def drain(self) -> ServiceReport:
        """Schedule and execute the whole backlog; empty the queue.

        Queries shed by the bounded queue since the last drain surface
        in this drain's report (outcome ``shed``, never executed).
        """
        batch, self._queue = self._queue, []
        shed, self._shed = self._shed, []
        return self._drain_batch(batch, shed)

    def run(self, specs: Sequence[QuerySpec]) -> ServiceReport:
        """Convenience: enqueue a trace, then drain it."""
        for spec in specs:
            self.enqueue(spec)
        return self.drain()

    def result_for(self, ticket: int) -> QueryResult:
        """The result a drained ticket produced (KeyError if it failed)."""
        return self.results[ticket]

    # -- internals --------------------------------------------------------

    def _probe_engine(self) -> GPLEngine:
        """A throwaway engine used for planning and footprint estimates."""
        engine = GPLEngine(
            self.database,
            self.device,
            config=self.config,
            partitioned_joins=self.partitioned_joins,
        )
        engine.plan_cache = self.plan_cache
        return engine

    def _result_key(self, probe: GPLEngine, spec: QuerySpec) -> str:
        """Result-cache key: the plan cache key plus an execution salt.

        ``plan_cache_key`` already covers everything that shapes the
        *rows* (query shape, database contents, device, plan knobs);
        the salt adds the execution parameters a cached result's
        metadata was produced under (tile size, pool width) so two
        differently-configured services never share entries.
        """
        pool_width = len(self.pool) if self.pool is not None else 1
        return (
            self.plan_cache.key_for(probe, spec)
            + f"|tile={self.config.tile_bytes}|pool={pool_width}"
        )

    def _ensure_search(self) -> ConfigurationSearch:
        if self._search is None:
            self._search = ConfigurationSearch(
                self.device, calibrate_channels(self.device)
            )
        return self._search

    def _estimate_cost(self, plan) -> float:
        """Predicted execution cycles for a plan (drives SJF ordering).

        Sums the memoized configuration search's best predicted T_Sk per
        segment — the first query of a shape pays the search, repeats hit
        the cache in :mod:`repro.model.search`.
        """
        search = self._ensure_search()
        segments = plan_cost_inputs(plan, self.database)
        return sum(
            search.best_for_segment(segment).predicted_cycles
            for segment in segments
        )

    def _plan_queries(
        self, batch: Sequence[Tuple[int, QuerySpec, Optional[FaultPlan]]]
    ) -> List[ScheduledQuery]:
        probe = self._probe_engine()
        planned: List[ScheduledQuery] = []
        for ticket, spec, fault_plan in batch:
            with maybe_span(
                "serve.plan", category="serve", query=spec.name, ticket=ticket
            ):
                hits_before = self.plan_cache.stats.hits
                plan = probe.prepare(spec)
                segment_configs = None
                if self.tuned:
                    search = self._ensure_search()
                    segments = plan_cost_inputs(plan, self.database)
                    segment_configs, est_cost = search.optimize_plan(segments)
                else:
                    est_cost = self._estimate_cost(plan)
                planned.append(
                    ScheduledQuery(
                        index=ticket,
                        spec=spec,
                        plan=plan,
                        est_cost_cycles=est_cost,
                        footprint_bytes=probe.estimated_plan_footprint(
                            plan, self.config
                        ),
                        plan_cache_hit=self.plan_cache.stats.hits
                        > hits_before,
                        segment_configs=segment_configs,
                        fault_plan=fault_plan,
                    )
                )
        return planned

    def _breaker_for(self, query: str) -> Optional[CircuitBreaker]:
        """The breaker guarding one query shape (lazily created).

        Breakers only exist in resilient mode with a threshold set: the
        non-resilient path has no fallback chain for a breaker to
        short-circuit.
        """
        if not self.resilient or not self.breaker_threshold:
            return None
        breaker = self._breakers.get(query)
        if breaker is None:
            breaker = CircuitBreaker(
                threshold=self.breaker_threshold,
                cooldown=self.breaker_cooldown,
                probe_budget=self.breaker_probes,
            )
            self._breakers[query] = breaker
        return breaker

    def _breaker_scopes(
        self, query: str
    ) -> List[Tuple[str, Optional[CircuitBreaker]]]:
        """``(scope label, breaker)`` pairs guarding one query.

        Single-device services have one service-wide scope per query
        shape; a pooled service has one scope per *active* device (an
        unhealthy device degrades only its own shard to KBE, the rest of
        the pool keeps running GPL).  Quarantined devices receive no
        shards, so they get no scope — their breakers hold state until
        pool health readmits the slot.
        """
        if self.pool is None:
            return [(query, self._breaker_for(query))]
        health = self._sharded.health
        return [
            (f"{query}@{slot.name}", self._breaker_for(f"{query}@{slot.name}"))
            for slot in self.pool
            if health.available(slot.index)
        ]

    def _member_conflict_keys(
        self, query: ScheduledQuery
    ) -> FrozenSet[Tuple[str, str]]:
        """Keys under which two round members must not run concurrently.

        Same-shape queries share breaker scopes, plan-cache entries and
        result keys, so the query name alone serialises them; with a
        segment cache attached, members sharing any lowered segment
        prefix are serialised too, so cross-query segment hit/miss
        counters match the sequential drain exactly.
        """
        keys = {("query", query.spec.name)}
        if self.pool is not None and self._sharded.health.enabled:
            # Pool health is shared mutable state: a member's execution
            # can quarantine a device, which changes the breaker scopes
            # and scatter width every later member must observe.  One
            # shared key serialises pooled members (commit-before-
            # arrival), so parallel drains replay the sequential
            # lifecycle exactly; shard-level parallelism inside each
            # scatter is unaffected.
            keys.add(("pool", "health"))
        if self.segment_cache is not None:
            keys.update(
                ("segment", key)
                for key in segment_cache_keys(
                    query.plan,
                    self.database,
                    self.device.name,
                    partitioned_joins=self.partitioned_joins,
                )
            )
        return frozenset(keys)

    def _member_arrival(self, query: ScheduledQuery) -> _InflightMember:
        """Breaker admission for one round member (drain thread only).

        Runs strictly after the commit of every earlier member whose
        conflict keys intersect this one's, so each breaker observes
        exactly the settlements a sequential drain would have applied.
        Metric increments and span events are *pended* and replayed at
        commit time, keeping the registry and the exported trace
        byte-identical at every worker count.
        """
        scopes = self._breaker_scopes(query.spec.name)
        degraded_scopes: set = set()
        pending: List[Tuple[str, str, Tuple[str, ...]]] = []
        for label, breaker in scopes:
            if breaker is None:
                continue
            if breaker.on_arrival() == "degraded":
                degraded_scopes.add(label)
                pending.append(("degraded", label, ()))
            pending.append(
                ("transitions", label, tuple(breaker.drain_transitions()))
            )
        return _InflightMember(
            query=query,
            scopes=scopes,
            degraded_scopes=degraded_scopes,
            pending=pending,
            keys=self._member_conflict_keys(query),
        )

    def _emit_member_arrival(self, member: _InflightMember) -> None:
        """Replay a member's pended arrival metrics/events (at commit)."""
        query = member.query
        for kind, label, states in member.pending:
            if kind == "degraded":
                self.registry.counter("breaker_degraded_total").inc()
                add_event(
                    "serve.breaker_degraded",
                    query=query.spec.name,
                    ticket=query.index,
                    scope=label,
                )
            else:
                self._emit_breaker_transitions(label, states)

    def _run_member(
        self,
        query: ScheduledQuery,
        slots: int,
        budget_share: float,
        degraded: bool,
        share: int,
        degraded_scopes: set,
    ) -> QueryResult:
        """Execute one round member (worker-pool task body).

        Runs under the task's private tracer: the ``serve.query`` span
        recorded here is the sub-trace's root, grafted into the drain's
        trace at the member's commit point.
        """
        with maybe_span(
            "serve.query",
            category="serve",
            query=query.spec.name,
            ticket=query.index,
        ) as span:
            try:
                result = self._execute_one(
                    query,
                    slots,
                    budget_share,
                    degraded=degraded,
                    share=share,
                    degraded_scopes=degraded_scopes,
                )
            except ReproError:
                if span is not None:
                    span.attrs["ok"] = False
                raise
            if span is not None:
                span.attrs["ok"] = True
                span.attrs["engine"] = result.engine
        return result

    def _pool_stats(self) -> Tuple[int, float]:
        """(tasks submitted, busy wall-clock seconds) across the serve
        pool and — on a pooled service — the shard scatter pool."""
        tasks = self.worker_pool.tasks_submitted
        busy = self.worker_pool.busy_seconds
        if self._sharded is not None:
            tasks += self._sharded.worker_pool.tasks_submitted
            busy += self._sharded.worker_pool.busy_seconds
        return tasks, busy

    def _settle_breakers(
        self,
        scopes: List[Tuple[str, Optional[CircuitBreaker]]],
        degraded_scopes: set,
        result: Optional[QueryResult] = None,
        error_fault: Optional[bool] = None,
    ) -> None:
        """Feed one query's outcome to its breaker scope(s).

        ``error_fault`` is set when the query raised (the whole
        scatter-gather aborted, so every scope observes the fault);
        otherwise per-device shard records attribute fallbacks to the
        device that fell back.  A degraded (KBE-routed) scope says
        nothing about GPL health, and a skipped (empty) shard counts as
        trivially healthy.
        """
        if error_fault is not None:
            for label, breaker in scopes:
                if breaker is not None:
                    breaker.on_result(fault=error_fault)
                    self._emit_breaker_events(label, breaker)
            return
        if self.pool is None:
            label, breaker = scopes[0]
            if breaker is not None:
                resilience = result.resilience
                fault = (
                    label not in degraded_scopes
                    and resilience is not None
                    and resilience.fallbacks > 0
                )
                breaker.on_result(fault=fault)
                self._emit_breaker_events(label, breaker)
            return
        shard = getattr(result, "shard", None)
        by_device: Dict[str, object] = {}
        relocated_by_device: Dict[str, List] = {}
        if shard is not None:
            for record in shard.records:
                by_device[record.device] = record
            for record in shard.relocated:
                relocated_by_device.setdefault(record.device, []).append(
                    record
                )
        # Scopes may cover fewer devices than the pool (quarantined
        # slots get none), so the device comes from the scope label.
        for label, breaker in scopes:
            if breaker is None:
                continue
            device = label.rsplit("@", 1)[1]
            record = by_device.get(device)
            fault = (
                label not in degraded_scopes
                and record is not None
                and not record.skipped
                and (record.fallbacks > 0 or record.failed)
            )
            if not fault and label not in degraded_scopes:
                # A relocated shard's fallbacks belong to the device
                # that finally served it.
                fault = any(
                    rec.fallbacks > 0
                    for rec in relocated_by_device.get(device, ())
                )
            breaker.on_result(fault=fault)
            self._emit_breaker_events(label, breaker)

    def _execute_one(
        self,
        query: ScheduledQuery,
        slots: int,
        budget_share: float,
        degraded: bool = False,
        share: int = 1,
        degraded_scopes: set = frozenset(),
    ) -> QueryResult:
        if self._sharded is not None:
            engines_by_device = {
                slot.index: ("kbe",)
                for slot in self.pool
                if f"{query.spec.name}@{slot.name}" in degraded_scopes
            }
            return self._sharded.execute(
                query.spec,
                share=share,
                engines_by_device=engines_by_device or None,
                fault_plan=query.fault_plan,
            )
        device = (
            self.device
            if slots == self.device.concurrency
            else self.device.with_overrides(concurrency=slots)
        )
        fault_plan = (
            query.fault_plan if query.fault_plan is not None
            else self.fault_plan
        )
        if self.resilient:
            executor = ResilientExecutor(
                self.database,
                device,
                config=self.config,
                fault_plan=fault_plan,
                memory_budget_bytes=budget_share,
                max_retries=self.max_retries,
                engines=("kbe",) if degraded else ("gpl", "gpl-woce", "kbe"),
                partitioned_joins=self.partitioned_joins,
                plan_cache=self.plan_cache,
                segment_configs=query.segment_configs,
                deadline_cycles=self.default_deadline_cycles,
                checkpoint_store=self.checkpoint_store,
                segment_cache=self.segment_cache,
            )
            return executor.execute(query.spec)
        engine = GPLEngine(
            self.database,
            device,
            config=self.config,
            segment_configs=query.segment_configs,
            partitioned_joins=self.partitioned_joins,
        )
        engine.plan_cache = self.plan_cache
        engine.segment_cache = self.segment_cache
        if fault_plan is not None:
            engine.fault_injector = FaultInjector(fault_plan)
        deadline = (
            query.spec.deadline_cycles
            if query.spec.deadline_cycles is not None
            else self.default_deadline_cycles
        )
        if deadline is not None:
            engine.cancellation = CancellationToken(
                deadline, query=query.spec.name
            )
        return engine.execute(query.spec)

    def _drain_batch(
        self,
        batch: Sequence[Tuple[int, QuerySpec, Optional[FaultPlan]]],
        shed: Sequence[Tuple[int, QuerySpec]] = (),
    ) -> ServiceReport:
        with maybe_span(
            "serve.drain",
            category="serve",
            policy=self.scheduler.policy,
            queries=len(batch),
        ):
            return self._drain_batch_inner(batch, shed)

    def _drain_batch_inner(
        self,
        batch: Sequence[Tuple[int, QuerySpec, Optional[FaultPlan]]],
        shed: Sequence[Tuple[int, QuerySpec]] = (),
    ) -> ServiceReport:
        plan_before = self.plan_cache.stats.as_dict()
        calibration_before = calibration_cache_stats()
        search_before = search_cache_stats()
        checkpoint_before = self.checkpoint_store.counters_dict()
        result_before = (
            self.result_cache.counters_dict()
            if self.result_cache is not None
            else {}
        )
        segment_before = (
            self.segment_cache.counters_dict()
            if self.segment_cache is not None
            else {}
        )
        pool_tasks_before, pool_busy_before = self._pool_stats()
        health = self._sharded.health if self._sharded is not None else None
        health_probes_before = health.probes if health is not None else 0
        health_quarantines_before = (
            health.quarantines if health is not None else 0
        )
        if (
            health is not None
            and health.enabled
            and not self._explicit_budget
        ):
            # Min-per-device admission follows pool health: the budget
            # is the tightest *active* device (quarantined slots take
            # no shards, so they don't constrain the round).
            self.memory_budget_bytes = min(
                self.pool.slot(index).effective_budget_bytes
                for index in health.active_indices()
            )

        records: List[QueryRecord] = []

        # -- result cache: answer hits before admission ------------------
        # Fault injection makes an execution's *path* part of the ask, so
        # any fault plan (service-wide or per-ticket) bypasses the cache
        # in both directions — faulty traffic neither reads nor writes it.
        store_keys: Dict[int, str] = {}
        if self.result_cache is not None:
            probe = self._probe_engine()
            remaining: List[
                Tuple[int, QuerySpec, Optional[FaultPlan]]
            ] = []
            for ticket, spec, fault_plan in batch:
                if fault_plan is not None or self.fault_plan is not None:
                    remaining.append((ticket, spec, fault_plan))
                    continue
                key = self._result_key(probe, spec)
                cached = self.result_cache.lookup(key)
                if cached is None:
                    store_keys[ticket] = key
                    remaining.append((ticket, spec, fault_plan))
                    continue
                self.results[ticket] = cached
                add_event(
                    "serve.result_cache",
                    query=spec.name,
                    ticket=ticket,
                    outcome="hit",
                )
                records.append(
                    QueryRecord(
                        index=ticket,
                        query=spec.name,
                        engine=cached.engine,
                        round=-1,
                        slots=0,
                        est_cost_cycles=0.0,
                        footprint_bytes=0.0,
                        wait_ms=0.0,
                        exec_ms=0.0,
                        plan_cache_hit=False,
                        num_rows=cached.num_rows,
                        outcome="cached",
                    )
                )
            batch = remaining

        planned = self._plan_queries(batch)

        # -- dedupe: one execution per identical pending spec ------------
        # The fingerprint excludes the deadline, so a deadline-tagged
        # query never piggybacks on an unbounded twin (and vice versa);
        # fault plans disable dedupe the same way they disable the
        # result cache — injected faults target individual executions.
        followers: Dict[int, List[ScheduledQuery]] = {}
        if self.batch_dedupe and self.fault_plan is None:
            leaders: Dict[Tuple[str, Optional[float]], ScheduledQuery] = {}
            unique: List[ScheduledQuery] = []
            for query in planned:
                if query.fault_plan is not None:
                    unique.append(query)
                    continue
                key = (
                    spec_fingerprint(query.spec),
                    query.spec.deadline_cycles,
                )
                leader = leaders.get(key)
                if leader is None:
                    leaders[key] = query
                    unique.append(query)
                else:
                    followers.setdefault(leader.index, []).append(query)
            planned = unique

        ordered = self.scheduler.order(planned)
        rounds = self.scheduler.admission_rounds(
            ordered,
            self.max_concurrent,
            self.memory_budget_bytes,
            group_fact=self.batch_dedupe,
        )
        shared_scan_rounds = (
            sum(1 for members in rounds if len(members) >= 2)
            if self.batch_dedupe
            else 0
        )
        faults_scheduled = 0
        faults_fired_total = 0
        faults_unfired: "_Counter[str]" = _Counter()

        def harvest_faults(resilience) -> None:
            nonlocal faults_scheduled, faults_fired_total
            if resilience is None:
                return
            faults_scheduled += resilience.faults_scheduled
            faults_fired_total += sum(resilience.faults_fired.values())
            faults_unfired.update(resilience.faults_unfired)

        clock_ms = 0.0
        self._last_error: Optional[ReproError] = None
        pool = self.worker_pool
        for round_index, members in enumerate(rounds):
            slots = max(1, self.device.concurrency // len(members))
            budget_share = self.memory_budget_bytes / len(members)
            round_makespan = 0.0
            with maybe_span(
                "serve.round",
                category="serve",
                round=round_index,
                members=len(members),
                slots=slots,
                shared_scan=self.batch_dedupe and len(members) >= 2,
            ):
                # Each member goes through three phases: *arrival*
                # (breaker admission, drain thread, member order),
                # *execution* (worker pool), *commit* (settlement,
                # records, trace grafting — drain thread, strictly in
                # member order).  A sequential pool commits eagerly
                # after each inline execution, which is exactly the
                # historical loop; a parallel pool overlaps executions
                # but commits in the same order, so every counter,
                # record, and exported trace byte is identical.
                inflight: List[_InflightMember] = []

                def commit_next() -> None:
                    nonlocal round_makespan
                    nonlocal faults_scheduled, faults_fired_total
                    member = inflight.pop(0)
                    query = member.query
                    task = member.task
                    task.wait()
                    self._emit_member_arrival(member)
                    grafted = task.merge_trace()
                    degraded = bool(member.degraded_scopes)
                    exc = task.error
                    if exc is not None:
                        if not isinstance(exc, ReproError):
                            raise exc
                        is_deadline = isinstance(exc, DeadlineExceededError)
                        self._last_error = exc
                        harvest_faults(getattr(exc, "resilience", None))
                        # A deadline says the time budget ran out, not
                        # that GPL faulted.  Settlement events belong
                        # inside the (already grafted) serve.query span,
                        # where the sequential loop emitted them.
                        tracer = current_tracer()
                        if grafted and tracer is not None:
                            with tracer.reopen(grafted[-1]):
                                self._settle_breakers(
                                    member.scopes,
                                    member.degraded_scopes,
                                    error_fault=not is_deadline,
                                )
                        else:
                            self._settle_breakers(
                                member.scopes,
                                member.degraded_scopes,
                                error_fault=not is_deadline,
                            )
                        records.append(
                            QueryRecord(
                                index=query.index,
                                query=query.spec.name,
                                engine="",
                                round=round_index,
                                slots=slots,
                                est_cost_cycles=query.est_cost_cycles,
                                footprint_bytes=query.footprint_bytes,
                                wait_ms=clock_ms,
                                exec_ms=0.0,
                                plan_cache_hit=query.plan_cache_hit,
                                ok=False,
                                error=str(exc).splitlines()[0],
                                outcome=(
                                    "deadline" if is_deadline else "failed"
                                ),
                                breaker_degraded=degraded,
                            )
                        )
                        for follower in followers.get(query.index, ()):
                            records.append(
                                QueryRecord(
                                    index=follower.index,
                                    query=follower.spec.name,
                                    engine="",
                                    round=round_index,
                                    slots=slots,
                                    est_cost_cycles=(
                                        follower.est_cost_cycles
                                    ),
                                    footprint_bytes=(
                                        follower.footprint_bytes
                                    ),
                                    wait_ms=clock_ms,
                                    exec_ms=0.0,
                                    plan_cache_hit=(
                                        follower.plan_cache_hit
                                    ),
                                    ok=False,
                                    error=str(exc).splitlines()[0],
                                    outcome=(
                                        "deadline" if is_deadline
                                        else "failed"
                                    ),
                                    breaker_degraded=degraded,
                                    deduped=True,
                                )
                            )
                        return
                    result = task.result
                    self.results[query.index] = result
                    harvest_faults(result.resilience)
                    if result.shard is not None:
                        # device_down accounting lives on the shard
                        # report (the injector never reaches engines).
                        faults_scheduled += (
                            result.shard.device_faults_scheduled
                        )
                        faults_fired_total += (
                            result.shard.device_faults_fired
                        )
                        faults_unfired.update(
                            result.shard.device_faults_unfired
                        )
                    # The GPL tier misbehaved if the resilient run had
                    # to fall off it; per-device scopes attribute shard
                    # fallbacks to the device that fell back.
                    self._settle_breakers(
                        member.scopes, member.degraded_scopes, result=result
                    )
                    round_makespan = max(round_makespan, result.elapsed_ms)
                    self.drift.record(
                        query=query.spec.name,
                        device=self.device.name,
                        tile_bytes=self.config.tile_bytes,
                        predicted_cycles=query.est_cost_cycles,
                        measured_cycles=result.counters.elapsed_cycles,
                    )
                    records.append(
                        QueryRecord(
                            index=query.index,
                            query=query.spec.name,
                            engine=result.engine,
                            round=round_index,
                            slots=slots,
                            est_cost_cycles=query.est_cost_cycles,
                            footprint_bytes=query.footprint_bytes,
                            wait_ms=clock_ms,
                            exec_ms=result.elapsed_ms,
                            plan_cache_hit=query.plan_cache_hit,
                            num_rows=result.num_rows,
                            breaker_degraded=degraded,
                            shards=(
                                result.shard.fanout
                                if result.shard is not None
                                else 0
                            ),
                            relocations=(
                                result.shard.relocations
                                if result.shard is not None
                                else 0
                            ),
                        )
                    )
                    # Fan the leader's result out to deduped twins: one
                    # execution answers every identical pending spec.
                    for follower in followers.get(query.index, ()):
                        self.results[follower.index] = result
                        add_event(
                            "serve.dedupe",
                            query=follower.spec.name,
                            ticket=follower.index,
                            leader=query.index,
                        )
                        records.append(
                            QueryRecord(
                                index=follower.index,
                                query=follower.spec.name,
                                engine=result.engine,
                                round=round_index,
                                slots=slots,
                                est_cost_cycles=follower.est_cost_cycles,
                                footprint_bytes=follower.footprint_bytes,
                                wait_ms=clock_ms,
                                exec_ms=0.0,
                                plan_cache_hit=follower.plan_cache_hit,
                                num_rows=result.num_rows,
                                breaker_degraded=degraded,
                                shards=(
                                    result.shard.fanout
                                    if result.shard is not None
                                    else 0
                                ),
                                deduped=True,
                            )
                        )
                    key = store_keys.get(query.index)
                    if key is not None:
                        self.result_cache.store(key, result)

                for query in members:
                    if not pool.sequential and inflight:
                        # Commit through the *last* in-flight member
                        # whose conflict keys intersect this one's —
                        # commits are strictly ordered, so this settles
                        # every state this member's breaker admission
                        # (and its caches) must observe.
                        keys = self._member_conflict_keys(query)
                        last = -1
                        for position, other in enumerate(inflight):
                            if other.keys & keys:
                                last = position
                        for _ in range(last + 1):
                            commit_next()
                    member = self._member_arrival(query)
                    degraded = bool(member.degraded_scopes)
                    member.task = pool.submit(
                        lambda query=query, degraded=degraded,
                        degraded_scopes=member.degraded_scopes: (
                            self._run_member(
                                query,
                                slots,
                                budget_share,
                                degraded,
                                len(members),
                                degraded_scopes,
                            )
                        )
                    )
                    inflight.append(member)
                    if pool.sequential:
                        commit_next()
                while inflight:
                    commit_next()
            clock_ms += round_makespan

        for ticket, spec in shed:
            records.append(
                QueryRecord(
                    index=ticket,
                    query=spec.name,
                    engine="",
                    round=-1,
                    slots=0,
                    est_cost_cycles=0.0,
                    footprint_bytes=0.0,
                    wait_ms=0.0,
                    exec_ms=0.0,
                    plan_cache_hit=False,
                    ok=False,
                    error=f"shed by bounded queue ({self.queue_policy})",
                    outcome="shed",
                )
            )

        pool_tasks_after, pool_busy_after = self._pool_stats()
        report = ServiceReport(
            device=self.device.name,
            policy=self.scheduler.policy,
            max_concurrent=self.max_concurrent,
            devices=len(self.pool) if self.pool is not None else 1,
            memory_budget_bytes=self.memory_budget_bytes,
            makespan_ms=clock_ms,
            workers=self.worker_pool.workers,
            pool_tasks=pool_tasks_after - pool_tasks_before,
            pool_busy_seconds=pool_busy_after - pool_busy_before,
            records=records,
            plan_cache=_stats_delta(
                self.plan_cache.stats.as_dict(), plan_before
            ),
            calibration_cache=_stats_delta(
                calibration_cache_stats(), calibration_before
            ),
            search_cache=_stats_delta(search_cache_stats(), search_before),
            result_cache=(
                _cache_delta(
                    self.result_cache.counters_dict(), result_before
                )
                if self.result_cache is not None
                else {}
            ),
            segment_cache=(
                _cache_delta(
                    self.segment_cache.counters_dict(), segment_before
                )
                if self.segment_cache is not None
                else {}
            ),
            shared_scan_rounds=shared_scan_rounds,
            breaker=breaker_states(self._breakers),
            checkpoint={
                key: self.checkpoint_store.counters_dict()[key]
                - checkpoint_before[key]
                for key in ("recorded", "resumed", "evicted", "invalidated")
            },
            faults_scheduled=faults_scheduled,
            faults_fired_total=faults_fired_total,
            faults_unfired=[
                spec if count == 1 else f"{spec} x{count}"
                for spec, count in sorted(faults_unfired.items())
            ],
            pool_health=(
                health.states()
                if health is not None and health.enabled
                else {}
            ),
            pool_quarantined=(
                health.quarantined_count() if health is not None else 0
            ),
            pool_probes=(
                health.probes - health_probes_before
                if health is not None
                else 0
            ),
            pool_quarantines=(
                health.quarantines - health_quarantines_before
                if health is not None
                else 0
            ),
        )
        self._record_metrics(report, len(rounds))
        report.metrics = self.registry.to_json()
        report.drift = {
            "per_query": self.drift.per_query(),
            "overall": self.drift.overall(),
        }
        return report

    def _emit_breaker_events(
        self, query: str, breaker: CircuitBreaker
    ) -> None:
        """Export any new breaker transitions as metrics + span events."""
        self._emit_breaker_transitions(query, breaker.drain_transitions())

    def _emit_breaker_transitions(
        self, query: str, states: Sequence[str]
    ) -> None:
        for state in states:
            self.registry.counter("breaker_transitions_total").inc(
                state=state
            )
            add_event("serve.breaker", query=query, state=state)

    def _record_metrics(self, report: ServiceReport, num_rounds: int) -> None:
        """Fold one drain's outcome into the service's metrics registry."""
        registry = self.registry
        registry.counter("serve_drains_total").inc()
        registry.counter("serve_rounds_total").inc(num_rounds)
        registry.gauge("serve_makespan_ms").set(report.makespan_ms)
        registry.gauge("serve_workers").set(self.worker_pool.workers)
        if report.deadline_exceeded:
            registry.counter("serve_deadline_exceeded_total").inc(
                report.deadline_exceeded
            )
        if report.shed:
            registry.counter("serve_shed_total").inc(
                report.shed, policy=self.queue_policy
            )
        for event, count in sorted(report.checkpoint.items()):
            if count > 0:
                registry.counter("checkpoint_segments_total").inc(
                    count, event=event
                )
        registry.gauge("checkpoint_live_bytes").set(
            self.checkpoint_store.live_bytes
        )
        if report.deduped:
            registry.counter("batch_dedupe_queries_total").inc(
                report.deduped
            )
        if report.shared_scan_rounds:
            registry.counter("batch_shared_scan_rounds_total").inc(
                report.shared_scan_rounds
            )
        if self._sharded is not None and self._sharded.health.enabled:
            registry.gauge("pool_quarantined").set(report.pool_quarantined)
            if report.pool_probes:
                registry.counter("pool_probe_total").inc(report.pool_probes)
        if self.result_cache is not None:
            registry.gauge("cache_result_bytes").set(
                self.result_cache.live_bytes
            )
        if self.segment_cache is not None:
            registry.gauge("cache_segment_bytes").set(
                self.segment_cache.live_bytes
            )
        for record in report.records:
            registry.counter("serve_queries_total").inc(
                status=record.outcome
            )
            if record.outcome == "ok":
                registry.histogram("serve_wait_ms").observe(record.wait_ms)
                registry.histogram("serve_exec_ms").observe(record.exec_ms)
                registry.histogram("serve_latency_ms").observe(
                    record.latency_ms
                )
        for cache, stats in (
            ("plan", report.plan_cache),
            ("calibration", report.calibration_cache),
            ("search", report.search_cache),
            ("result", report.result_cache),
            ("segment", report.segment_cache),
        ):
            for key, outcome in (("hits", "hit"), ("misses", "miss")):
                count = stats.get(key, 0)
                if count > 0:
                    registry.counter("cache_lookups_total").inc(
                        count, cache=cache, outcome=outcome
                    )
            evictions = stats.get("evictions", 0)
            if evictions > 0:
                registry.counter("cache_evictions_total").inc(
                    evictions, cache=cache
                )
        for result in (
            self.results[record.index]
            for record in report.records
            if record.ok and record.index in self.results
        ):
            shard = result.shard
            if shard is not None:
                registry.counter("shard_queries_total").inc(
                    merge=shard.merge_kind
                )
                registry.histogram("shard_fanout").observe(shard.fanout)
                registry.gauge("shard_skew").set(shard.skew)
                registry.histogram("shard_merge_ms").observe(shard.merge_ms)
                if shard.relocations:
                    registry.counter("shard_relocations_total").inc(
                        shard.relocations
                    )
                for device, busy in sorted(shard.device_busy_ms().items()):
                    registry.counter("shard_device_busy_ms_total").inc(
                        busy, device=device
                    )
            resilience = result.resilience
            if resilience is None:
                continue
            if resilience.retries:
                registry.counter("resilience_retries_total").inc(
                    resilience.retries
                )
            if resilience.fallbacks:
                registry.counter("resilience_fallbacks_total").inc(
                    resilience.fallbacks
                )
            if resilience.reconfigurations:
                registry.counter("resilience_reconfigurations_total").inc(
                    resilience.reconfigurations
                )
            if resilience.admission_shrinks:
                registry.counter("resilience_admission_shrinks_total").inc(
                    resilience.admission_shrinks
                )
            if resilience.admission_rejections:
                registry.counter(
                    "resilience_admission_rejections_total"
                ).inc(resilience.admission_rejections)
            for kind, count in sorted(resilience.faults_fired.items()):
                registry.counter("resilience_faults_total").inc(
                    count, kind=kind
                )
