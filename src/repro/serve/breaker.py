"""Per-query circuit breakers for the serving layer.

A breaker guards the expensive half of the fallback chain: when a query
shape keeps faulting on the GPL engines (deadlocks, kernel aborts — the
errors that force :class:`~repro.core.ResilientExecutor` to fall back),
re-attempting full pipelined execution on every arrival just burns
simulated device time before landing on KBE anyway.  The breaker trips
after ``threshold`` *consecutive* GPL-tier faults and routes subsequent
arrivals of that query straight to the KBE degrade path (still
answering, still reference-correct — just without pipelining).

Classic three-state machine, deterministic because the service executes
drains sequentially:

* ``closed`` — full chain; consecutive faults count toward the trip.
* ``open`` — degrade to KBE for ``cooldown`` arrivals, then half-open.
* ``half-open`` — let ``probe_budget`` arrivals try the full chain; one
  success re-closes, exhausting the budget re-opens.

The breaker never *drops* a query (that is the admission queue's job);
it only picks which engine chain serves it.
"""

from __future__ import annotations

from typing import Dict, List

__all__ = ["CircuitBreaker", "BREAKER_STATES", "breaker_states"]

#: The states a breaker reports (the ``state`` label of
#: ``breaker_transitions_total``).
BREAKER_STATES = ("closed", "open", "half-open")


class CircuitBreaker:
    """Breaker for one query shape on the GPL engine tier."""

    def __init__(
        self,
        threshold: int = 3,
        cooldown: int = 2,
        probe_budget: int = 1,
    ):
        if threshold < 1:
            raise ValueError("breaker threshold must be at least 1")
        if cooldown < 1:
            raise ValueError("breaker cooldown must be at least 1")
        if probe_budget < 1:
            raise ValueError("breaker probe budget must be at least 1")
        self.threshold = threshold
        self.cooldown = cooldown
        self.probe_budget = probe_budget
        self._pending_transitions: List[str] = []
        self.state = "closed"
        self._consecutive_faults = 0
        self._served_while_open = 0
        self._probes_left = 0
        self._probing = False
        # lifetime counters
        self.trips = 0
        self.degraded_served = 0
        self.probes = 0

    def on_arrival(self) -> str:
        """Decide how the next arrival runs: ``"full"`` or ``"degraded"``.

        May transition ``open -> half-open`` when the cooldown has been
        served; the transition is returned to the caller via
        :meth:`drain_transitions`.
        """
        if self.state == "open":
            if self._served_while_open >= self.cooldown:
                self._transition("half-open")
                self._probes_left = self.probe_budget
            else:
                self._served_while_open += 1
                self.degraded_served += 1
                self._probing = False
                return "degraded"
        if self.state == "half-open":
            self.probes += 1
            self._probing = True
            return "full"
        self._probing = False
        return "full"

    def on_result(self, fault: bool) -> None:
        """Record the outcome of the arrival :meth:`on_arrival` routed.

        ``fault`` means the GPL tier misbehaved for this query: the
        resilient execution fell back at least once, or failed outright.
        Degraded (KBE-routed) arrivals never count as faults — KBE is
        the degrade path, not the thing being protected.
        """
        if self.state == "half-open" and self._probing:
            if fault:
                self._probes_left -= 1
                if self._probes_left <= 0:
                    self._transition("open")
                    self._served_while_open = 0
            else:
                self._transition("closed")
                self._consecutive_faults = 0
            self._probing = False
            return
        if self.state == "closed":
            if fault:
                self._consecutive_faults += 1
                if self._consecutive_faults >= self.threshold:
                    self.trips += 1
                    self._transition("open")
                    self._served_while_open = 0
            else:
                self._consecutive_faults = 0

    # -- transition log --------------------------------------------------

    def _transition(self, state: str) -> None:
        self.state = state
        self._pending_transitions.append(state)

    def drain_transitions(self) -> List[str]:
        """New states entered since the last call (for metrics/spans)."""
        out, self._pending_transitions = self._pending_transitions, []
        return out


def breaker_states(breakers: Dict[str, CircuitBreaker]) -> Dict[str, str]:
    """Final state per query shape, sorted for deterministic witnesses."""
    return {name: breakers[name].state for name in sorted(breakers)}
