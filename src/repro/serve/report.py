"""Serving reports: per-query records and workload-level aggregates.

This is the serving twin of :class:`~repro.core.ResilienceReport`: the
numbers a query *service* is judged by — throughput and tail latency —
plus the cache counters that explain why repeat traffic is fast.  Like
the resilience report, :meth:`ServiceReport.counters_dict` is the
canonical determinism witness: two drains of the same trace with the
same seed must produce equal dicts.

Latency here is *simulated service latency*: the virtual milliseconds a
query spent waiting for an admission round plus its own simulated
execution time.  Wall-clock planning costs (optimization, calibration,
the configuration search) are what the caches remove; they are reported
separately as cache counters rather than folded into the simulated
timeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = ["QueryRecord", "ServiceReport", "percentile"]


def percentile(values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation).

    ``percentile(xs, 0.5)`` is the median element actually observed —
    appropriate for small serving traces where interpolated quantiles
    would invent latencies no query experienced.
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, int(round(fraction * len(ordered))) - 1))
    if fraction <= 0:
        rank = 0
    return ordered[rank]


@dataclass(frozen=True)
class QueryRecord:
    """One query's trip through the service."""

    index: int  # submission order (the async queue ticket)
    query: str
    engine: str  # engine that answered ("" if the query failed)
    round: int  # admission round the query ran in
    slots: int  # concurrent-kernel slots its round partition granted
    est_cost_cycles: float  # cost model's estimate (drives SJF ordering)
    footprint_bytes: float  # admission footprint estimate
    wait_ms: float  # simulated queue wait before its round started
    exec_ms: float  # simulated execution time
    plan_cache_hit: bool
    num_rows: int = 0
    ok: bool = True
    error: str = ""
    #: How the query left the service: ``ok`` | ``failed`` |
    #: ``deadline`` (cancelled past its cycle budget) | ``shed``
    #: (dropped by the bounded admission queue, never executed) |
    #: ``cached`` (answered from the result cache before admission —
    #: zero admission cost, zero simulated execution).
    outcome: str = "ok"
    #: An open circuit breaker routed this query (or, on a pooled
    #: service, at least one of its shards) straight to KBE.
    breaker_degraded: bool = False
    #: Shards that executed when the service ran this query across a
    #: device pool (0 = single-device execution).
    shards: int = 0
    #: Relocation attempts consumed when shards of this query failed on
    #: their device and re-ran on a healthy one (pooled services only;
    #: followers of a deduped leader report 0).
    relocations: int = 0
    #: This query was deduplicated in a batched drain: an identical
    #: pending spec executed once and fanned its result out here.
    deduped: bool = False

    @property
    def latency_ms(self) -> float:
        return self.wait_ms + self.exec_ms


@dataclass
class ServiceReport:
    """Aggregates for one drained batch of queries."""

    device: str = ""
    policy: str = ""
    max_concurrent: int = 1
    #: Pool size the drain executed against (1 = single device).
    devices: int = 1
    memory_budget_bytes: float = 0.0
    makespan_ms: float = 0.0
    #: Host worker threads the drain's pools ran with (1 = sequential).
    #: Deliberately NOT part of :meth:`counters_dict`: the witness must
    #: be byte-identical at every worker count.
    workers: int = 1
    #: Worker-pool tasks this drain submitted (serve pool plus, on a
    #: pooled service, the shard scatter pool).  Informational.
    pool_tasks: int = 0
    #: Wall-clock seconds those tasks spent busy — the only number that
    #: is *allowed* to change with ``workers``.
    pool_busy_seconds: float = 0.0
    records: List[QueryRecord] = field(default_factory=list)
    plan_cache: Dict[str, int] = field(default_factory=dict)
    calibration_cache: Dict[str, int] = field(default_factory=dict)
    search_cache: Dict[str, int] = field(default_factory=dict)
    #: Result-cache counter deltas for this drain (empty: cache off).
    result_cache: Dict[str, int] = field(default_factory=dict)
    #: Cross-query segment-cache counter deltas (empty: cache off).
    segment_cache: Dict[str, int] = field(default_factory=dict)
    #: Admission rounds whose members shared a fact table (≥ 2 queries
    #: over one scan); 0 unless shared-scan grouping batched anything.
    shared_scan_rounds: int = 0
    #: Snapshot of the service's metrics registry at drain end
    #: (``MetricsRegistry.to_json()``); empty when metrics are off.
    metrics: Dict[str, object] = field(default_factory=dict)
    #: Cost-model drift roll-up (``{"per_query": ..., "overall": ...}``)
    #: accumulated by the service's :class:`~repro.obs.DriftRecorder`.
    drift: Dict[str, object] = field(default_factory=dict)
    #: Final circuit-breaker state per query shape (empty: breakers off).
    breaker: Dict[str, str] = field(default_factory=dict)
    #: Checkpoint-store counter deltas for this drain (recorded /
    #: resumed / evicted / invalidated segment events).
    checkpoint: Dict[str, int] = field(default_factory=dict)
    #: Fault-schedule accounting summed over the drain's executions:
    #: total scheduled firings, total fired, and the specs that still
    #: held unspent budget (chaos soaks assert ``faults_unfired == []``).
    faults_scheduled: int = 0
    faults_fired_total: int = 0
    faults_unfired: List[str] = field(default_factory=list)
    #: Final pool-health state per device slot (empty: single device or
    #: health tracking disabled).
    pool_health: Dict[str, str] = field(default_factory=dict)
    #: Devices quarantined at drain end.
    pool_quarantined: int = 0
    #: Probation probes the pool-health tracker opened during this drain.
    pool_probes: int = 0
    #: Quarantine transitions during this drain.
    pool_quarantines: int = 0

    # -- derived ----------------------------------------------------------

    @property
    def num_queries(self) -> int:
        return len(self.records)

    @property
    def completed(self) -> int:
        return sum(1 for r in self.records if r.ok)

    @property
    def failed(self) -> int:
        return self.num_queries - self.completed

    @property
    def num_rounds(self) -> int:
        return max((r.round for r in self.records), default=-1) + 1

    @property
    def deadline_exceeded(self) -> int:
        return sum(1 for r in self.records if r.outcome == "deadline")

    @property
    def shed(self) -> int:
        return sum(1 for r in self.records if r.outcome == "shed")

    @property
    def cached(self) -> int:
        """Queries answered from the result cache (never admitted)."""
        return sum(1 for r in self.records if r.outcome == "cached")

    @property
    def deduped(self) -> int:
        """Queries answered by another identical query's execution."""
        return sum(1 for r in self.records if r.deduped)

    @property
    def breaker_degraded(self) -> int:
        return sum(1 for r in self.records if r.breaker_degraded)

    @property
    def relocations(self) -> int:
        """Shard relocation attempts consumed across the drain."""
        return sum(r.relocations for r in self.records)

    @property
    def hard_failures(self) -> int:
        """Failures that are neither deadline cancellations nor sheds."""
        return sum(1 for r in self.records if r.outcome == "failed")

    @property
    def throughput_qps(self) -> float:
        """Completed queries per simulated second of service time."""
        if self.makespan_ms <= 0:
            return 0.0
        return self.completed / (self.makespan_ms / 1e3)

    def latencies_ms(self) -> List[float]:
        return [r.latency_ms for r in self.records if r.ok]

    @property
    def p50_latency_ms(self) -> float:
        return percentile(self.latencies_ms(), 0.50)

    @property
    def p95_latency_ms(self) -> float:
        return percentile(self.latencies_ms(), 0.95)

    @property
    def sequential_ms(self) -> float:
        """What the same trace would cost with no overlap at all."""
        return sum(r.exec_ms for r in self.records if r.ok)

    # -- witnesses --------------------------------------------------------

    def counters_dict(self) -> Dict[str, object]:
        """Canonical determinism witness (same seed => equal dicts)."""
        return {
            "device": self.device,
            "policy": self.policy,
            "max_concurrent": self.max_concurrent,
            "devices": self.devices,
            "num_queries": self.num_queries,
            "completed": self.completed,
            "failed": self.failed,
            "num_rounds": self.num_rounds,
            "plan_cache": dict(sorted(self.plan_cache.items())),
            "calibration_cache": dict(sorted(self.calibration_cache.items())),
            "search_cache": dict(sorted(self.search_cache.items())),
            "result_cache": dict(sorted(self.result_cache.items())),
            "segment_cache": dict(sorted(self.segment_cache.items())),
            "shared_scan_rounds": self.shared_scan_rounds,
            "deduped": self.deduped,
            "outcomes": {
                outcome: sum(
                    1 for r in self.records if r.outcome == outcome
                )
                for outcome in ("ok", "failed", "deadline", "shed", "cached")
            },
            "breaker": dict(sorted(self.breaker.items())),
            "breaker_degraded": self.breaker_degraded,
            "checkpoint": dict(sorted(self.checkpoint.items())),
            "faults_scheduled": self.faults_scheduled,
            "faults_fired_total": self.faults_fired_total,
            "faults_unfired": list(self.faults_unfired),
            "pool_health": dict(sorted(self.pool_health.items())),
            "pool_quarantined": self.pool_quarantined,
            "pool_probes": self.pool_probes,
            "pool_quarantines": self.pool_quarantines,
            "relocations": self.relocations,
            "schedule": [
                (
                    r.index, r.query, r.round, r.slots, r.engine, r.ok,
                    r.outcome, r.breaker_degraded, r.shards, r.deduped,
                    r.relocations,
                )
                for r in self.records
            ],
        }

    def to_text(self) -> str:
        where = self.device or "?"
        if self.devices > 1:
            where = f"{where} x{self.devices} (sharded)"
        lines = [
            f"{self.policy} on {where} | "
            f"{self.completed}/{self.num_queries} ok in "
            f"{self.num_rounds} rounds | makespan {self.makespan_ms:.3f} ms "
            f"(sequential {self.sequential_ms:.3f} ms)",
            f"throughput {self.throughput_qps:.1f} q/s | "
            f"latency p50 {self.p50_latency_ms:.3f} ms, "
            f"p95 {self.p95_latency_ms:.3f} ms",
        ]
        if self.workers > 1:
            # pool_busy_seconds is wall-clock and deliberately not
            # printed: identical invocations must render identical text.
            lines.append(
                f"host parallelism: {self.workers} workers | "
                f"{self.pool_tasks} pool tasks"
            )
        if self.deadline_exceeded or self.shed or self.breaker_degraded:
            lines.append(
                f"resilience: {self.deadline_exceeded} deadline-exceeded | "
                f"{self.shed} shed | "
                f"{self.breaker_degraded} breaker-degraded"
            )
        if self.breaker:
            open_like = {
                name: state
                for name, state in sorted(self.breaker.items())
                if state != "closed"
            }
            if open_like:
                lines.append(
                    "breakers: "
                    + ", ".join(
                        f"{name}={state}" for name, state in open_like.items()
                    )
                )
        if (
            self.relocations
            or self.pool_quarantined
            or self.pool_quarantines
            or self.pool_probes
        ):
            sick = ", ".join(
                f"{name}={state}"
                for name, state in sorted(self.pool_health.items())
                if state != "healthy"
            )
            lines.append(
                f"pool: {self.relocations} relocations | "
                f"{self.pool_quarantined} quarantined | "
                f"{self.pool_quarantines} quarantine trips | "
                f"{self.pool_probes} probes"
                + (f" | {sick}" if sick else "")
            )
        if self.checkpoint.get("recorded") or self.checkpoint.get("resumed"):
            lines.append(
                f"checkpoints: {self.checkpoint.get('recorded', 0)} segments "
                f"recorded, {self.checkpoint.get('resumed', 0)} resumed, "
                f"{self.checkpoint.get('evicted', 0)} evicted"
            )
        if self.faults_scheduled:
            if self.faults_unfired:
                lines.append(
                    f"faults: {self.faults_fired_total} of "
                    f"{self.faults_scheduled} scheduled firings fired; "
                    "unfired: " + "; ".join(self.faults_unfired)
                )
            else:
                lines.append(
                    f"faults: all {self.faults_scheduled} scheduled "
                    f"firings fired"
                )
        if self.cached or self.deduped or self.shared_scan_rounds:
            lines.append(
                f"batching: {self.cached} result-cache answered | "
                f"{self.deduped} deduped | "
                f"{self.shared_scan_rounds} shared-scan rounds"
            )
        for label, stats in (
            ("plan cache", self.plan_cache),
            ("calibration cache", self.calibration_cache),
            ("search cache", self.search_cache),
            ("result cache", self.result_cache),
            ("segment cache", self.segment_cache),
        ):
            if stats:
                lines.append(
                    f"{label}: {stats.get('hits', 0)} hits, "
                    f"{stats.get('misses', 0)} misses"
                )
        overall = self.drift.get("overall") if self.drift else None
        if overall and overall.get("observations"):
            lines.append(
                f"cost-model drift: {int(overall['observations'])} obs | "
                f"mean err {overall['mean_relative_error']:.1%} | "
                f"max err {overall['max_relative_error']:.1%} | "
                f"under {overall['underestimated_share']:.0%}"
            )
        for r in sorted(self.records, key=lambda r: (r.round, r.index)):
            if r.outcome == "cached":
                status = f"{r.engine} [cached]"
            elif r.ok:
                status = r.engine
                if r.deduped:
                    status += " [deduped]"
                if r.breaker_degraded:
                    status += " [breaker]"
                if r.relocations:
                    status += f" [relocated x{r.relocations}]"
            elif r.outcome == "deadline":
                status = f"DEADLINE ({r.error})"
            elif r.outcome == "shed":
                status = f"SHED ({r.error})"
            else:
                status = f"FAILED ({r.error})"
            lines.append(
                f"  #{r.index:<3} {r.query:<6} round {r.round} "
                f"x{r.slots} slots | wait {r.wait_ms:8.3f} ms + "
                f"exec {r.exec_ms:8.3f} ms = {r.latency_ms:8.3f} ms | "
                f"{status}"
            )
        return "\n".join(lines)
