"""Query serving: concurrent scheduling + plan/calibration caching.

The layer that turns the single-query reproduction into a system that
answers "queries per second": a :class:`QueryService` accepts many
queries (sync submit or async queue), schedules them FIFO or
shortest-cost-first, partitions the simulated device's concurrent-kernel
slots and memory budget across each admission round, and makes repeat
traffic fast through a :class:`PlanCache` plus the memoized calibration
and configuration-search caches in :mod:`repro.model`.  Every drain
produces a deterministic :class:`ServiceReport` with throughput, p50/p95
latency, and cache hit/miss counters.

Executed work is cacheable too (opt-in): a byte-budgeted
:class:`ResultCache` answers repeat queries before admission, a
cross-query :class:`SegmentCache` resumes shared plan prefixes from
materialized segment outputs, and ``batch_dedupe`` adds shared-scan
batched admission (identical pending specs execute once; same-fact
queries share a round).  See ``docs/caching.md``.
"""

from .breaker import BREAKER_STATES, CircuitBreaker
from .caches import CacheStats, PlanCache, ResultCache, SegmentCache
from .report import QueryRecord, ServiceReport, percentile
from .scheduler import POLICIES, ScheduledQuery, Scheduler
from .service import QUEUE_POLICIES, QueryService

__all__ = [
    "BREAKER_STATES",
    "CircuitBreaker",
    "CacheStats",
    "PlanCache",
    "ResultCache",
    "SegmentCache",
    "QueryRecord",
    "ServiceReport",
    "percentile",
    "POLICIES",
    "QUEUE_POLICIES",
    "ScheduledQuery",
    "Scheduler",
    "QueryService",
]
