"""Scheduling policies and admission for the query service.

The paper's device shares its concurrent-kernel slots between the
kernels of *one* query's segment; the serving layer extends the same
resource model one level up — concurrent *queries* share the slots and
the device memory budget.  The scheduler decides two things:

* **order** — FIFO preserves submission order; shortest-cost-first
  (``sjf``) runs the queries the cost model predicts to be cheapest
  first, the classic mean-latency optimization for mixed workloads;
* **admission rounds** — a greedy packing of the ordered queue: a round
  takes queries while concurrent slots remain and the *sum* of their
  estimated footprints fits the shared memory budget.  Queries in one
  round execute concurrently (each gets an equal partition of the
  device's kernel slots and of the budget); rounds execute in sequence.

A query whose lone footprint exceeds the whole budget is still admitted
alone: the per-query admission control of
:class:`~repro.core.ResilientExecutor` then shrinks it down the
Δ-halving ladder or rejects it with a typed error — the scheduler never
silently drops work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.config import GPLConfig
from ..errors import ExecutionError
from ..faults import FaultPlan
from ..plans import PhysicalPlan, QuerySpec

__all__ = ["POLICIES", "ScheduledQuery", "Scheduler"]

#: Supported scheduling policies.
POLICIES: Tuple[str, ...] = ("fifo", "sjf")


@dataclass(frozen=True)
class ScheduledQuery:
    """One admitted-for-scheduling query with its planning artifacts."""

    index: int  # submission order (the queue ticket)
    spec: QuerySpec
    plan: PhysicalPlan
    est_cost_cycles: float
    footprint_bytes: float
    plan_cache_hit: bool
    #: Model-chosen per-segment configs (the service's ``tuned`` mode);
    #: ``None`` means the service's baseline config applies throughout.
    segment_configs: Optional[Dict[str, GPLConfig]] = None
    #: Per-query fault schedule override (chaos harnesses); ``None``
    #: falls through to the service-wide plan.
    fault_plan: Optional[FaultPlan] = None


class Scheduler:
    """Deterministic ordering + greedy round packing."""

    def __init__(self, policy: str = "fifo"):
        if policy not in POLICIES:
            raise ExecutionError(
                f"unknown scheduling policy {policy!r}; "
                f"expected one of {POLICIES}"
            )
        self.policy = policy

    def order(
        self, queue: Sequence[ScheduledQuery]
    ) -> List[ScheduledQuery]:
        """The execution order for one drain of the queue.

        Ties (and FIFO generally) break on the submission index, so the
        schedule is a pure function of the queue contents.
        """
        if self.policy == "fifo":
            return sorted(queue, key=lambda q: q.index)
        return sorted(queue, key=lambda q: (q.est_cost_cycles, q.index))

    def admission_rounds(
        self,
        ordered: Sequence[ScheduledQuery],
        max_concurrent: int,
        budget_bytes: float,
        group_fact: bool = False,
    ) -> List[List[ScheduledQuery]]:
        """Greedy packing of the ordered queue into concurrent rounds.

        With ``group_fact=True`` (shared-scan batching) the ordered
        queue is first partitioned by fact table — groups keep the
        first-appearance order of their fact, members keep the policy
        order within the group — and each group is packed separately.
        Queries in a shared-scan round read the same fact table, so the
        round amortizes one scan (one partitioning pass on the pool
        path, one zero-copy column walk on a single device) across its
        members instead of re-touching the fact per query.
        """
        if max_concurrent < 1:
            raise ExecutionError("max_concurrent must be at least 1")
        groups: List[Sequence[ScheduledQuery]]
        if group_fact:
            by_fact: Dict[str, List[ScheduledQuery]] = {}
            for query in ordered:
                fact = query.spec.table_ref(query.spec.fact).table
                by_fact.setdefault(fact, []).append(query)
            groups = list(by_fact.values())
        else:
            groups = [list(ordered)]
        rounds: List[List[ScheduledQuery]] = []
        for group in groups:
            current: List[ScheduledQuery] = []
            used = 0.0
            for query in group:
                fits_slots = len(current) < max_concurrent
                fits_budget = used + query.footprint_bytes <= budget_bytes
                if current and not (fits_slots and fits_budget):
                    rounds.append(current)
                    current, used = [], 0.0
                current.append(query)
                used += query.footprint_bytes
            if current:
                rounds.append(current)
        return rounds
