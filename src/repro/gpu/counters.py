"""Hardware performance counters accumulated by the simulator.

These are the simulated twins of the profiler counters the paper reads with
CodeXL / Visual Profiler (Section 2.2):

* ``VALUBusy`` — fraction of elapsed device time the vector ALUs were busy;
* ``MemUnitBusy`` — same for the memory units;
* cache hit ratio, kernel occupancy, and the GPL-specific accounting the
  evaluation needs: bytes materialized in global memory, bytes passed
  through channels, pipeline delay cycles, and a per-category time
  breakdown (compute / memory / data-channel / delay) for Fig 20/29.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["KernelRunStats", "HardwareCounters"]


@dataclass
class KernelRunStats:
    """Per-kernel-launch statistics from one simulator run."""

    name: str
    elapsed_cycles: float
    compute_cycles: float  # total VALU busy cycles across all CUs
    memory_cycles: float  # total memory-unit busy cycles across all CUs
    #: The communication subset of ``memory_cycles``: intermediate-result
    #: reloads, materialization writes, and hash-table (aux) accesses —
    #: the paper's Mem_cost.  Streaming scans of base inputs are kernel
    #: work, not communication.
    stall_cycles: float = 0.0
    channel_cycles: float = 0.0  # cycles spent on channel reserve/transfer
    delay_cycles: float = 0.0  # pipeline starvation / backpressure stalls
    tuples: int = 0
    workgroups: int = 0
    active_workgroups: int = 0
    bytes_read: float = 0.0
    bytes_written_global: float = 0.0
    bytes_channel: float = 0.0
    cache_hits: float = 0.0
    cache_accesses: float = 0.0

    @property
    def cache_hit_ratio(self) -> float:
        if self.cache_accesses <= 0:
            return 0.0
        return self.cache_hits / self.cache_accesses

    @property
    def occupancy(self) -> float:
        """In-flight work-groups relative to what was requested."""
        if self.workgroups <= 0:
            return 0.0
        return min(1.0, self.active_workgroups / self.workgroups)


@dataclass
class HardwareCounters:
    """Device-level accumulation across an entire query execution."""

    num_cus: int = 1
    elapsed_cycles: float = 0.0
    compute_cycles: float = 0.0
    memory_cycles: float = 0.0
    stall_cycles: float = 0.0
    channel_cycles: float = 0.0
    delay_cycles: float = 0.0
    launch_overhead_cycles: float = 0.0
    bytes_materialized: float = 0.0
    bytes_channel: float = 0.0
    cache_hits: float = 0.0
    cache_accesses: float = 0.0
    kernel_launches: int = 0
    kernel_stats: List[KernelRunStats] = field(default_factory=list)

    def record(self, stats: KernelRunStats, launches: int = 0) -> None:
        """Fold one kernel run into the device totals.

        Launch counting happens in :meth:`add_launch_overhead` (engines
        charge dispatch cost explicitly); pass ``launches`` only when a
        run is recorded without a separate overhead charge.
        """
        self.kernel_stats.append(stats)
        self.compute_cycles += stats.compute_cycles
        self.memory_cycles += stats.memory_cycles
        self.stall_cycles += stats.stall_cycles
        self.channel_cycles += stats.channel_cycles
        self.delay_cycles += stats.delay_cycles
        self.bytes_materialized += stats.bytes_written_global
        self.bytes_channel += stats.bytes_channel
        self.cache_hits += stats.cache_hits
        self.cache_accesses += stats.cache_accesses
        self.kernel_launches += launches

    def add_elapsed(self, cycles: float) -> None:
        """Advance the device wall clock (runs are serialized per engine)."""
        self.elapsed_cycles += cycles

    def add_launch_overhead(self, cycles: float, launches: int = 1) -> None:
        self.launch_overhead_cycles += cycles
        self.elapsed_cycles += cycles
        self.kernel_launches += launches

    # -- derived counters ------------------------------------------------

    @property
    def total_cycles(self) -> float:
        return self.elapsed_cycles

    @property
    def valu_busy(self) -> float:
        """VALUBusy: VALU-busy device-cycles / (#CU * elapsed)."""
        if self.elapsed_cycles <= 0:
            return 0.0
        return min(1.0, self.compute_cycles / (self.num_cus * self.elapsed_cycles))

    @property
    def mem_unit_busy(self) -> float:
        """MemUnitBusy: memory-unit-busy device-cycles / (#CU * elapsed)."""
        if self.elapsed_cycles <= 0:
            return 0.0
        return min(1.0, self.memory_cycles / (self.num_cus * self.elapsed_cycles))

    @property
    def cache_hit_ratio(self) -> float:
        if self.cache_accesses <= 0:
            return 0.0
        return self.cache_hits / self.cache_accesses

    def breakdown(self) -> Dict[str, float]:
        """Execution-time breakdown by category (Fig 20 / Fig 29).

        Fractions are of total busy accounting, normalized to sum to 1.
        ``Mem_cost`` covers communication memory stalls (intermediate
        ping-pong, hash-table accesses), ``DC_cost`` channel
        reservations/transfers, ``Delay`` pipeline-imbalance idle time,
        and ``Compute`` the kernels' own work (VALU issue plus streaming
        input scans).
        """
        parts = {
            "Compute": self.compute_cycles
            + (self.memory_cycles - self.stall_cycles),
            "Mem_cost": self.stall_cycles,
            "DC_cost": self.channel_cycles,
            "Delay": self.delay_cycles,
        }
        total = sum(parts.values())
        if total <= 0:
            return {key: 0.0 for key in parts}
        return {key: value / total for key, value in parts.items()}

    def merge(self, other: "HardwareCounters") -> None:
        """Fold another counter set (e.g. a sub-plan) into this one."""
        self.elapsed_cycles += other.elapsed_cycles
        self.compute_cycles += other.compute_cycles
        self.memory_cycles += other.memory_cycles
        self.stall_cycles += other.stall_cycles
        self.channel_cycles += other.channel_cycles
        self.delay_cycles += other.delay_cycles
        self.launch_overhead_cycles += other.launch_overhead_cycles
        self.bytes_materialized += other.bytes_materialized
        self.bytes_channel += other.bytes_channel
        self.cache_hits += other.cache_hits
        self.cache_accesses += other.cache_accesses
        self.kernel_launches += other.kernel_launches
        self.kernel_stats.extend(other.kernel_stats)
