"""Kernel descriptions: the static program-analysis view of GPU kernels.

A :class:`KernelSpec` captures everything the paper's cost model obtains
from *program analysis* (Table 2): per-tuple compute and memory instruction
counts, private/local memory usage per work-item, the work-group size, and
whether the kernel is blocking.  A :class:`KernelLaunch` binds a spec to a
concrete amount of work (tuples, byte widths, work-group count, where input
comes from and output goes) for one simulator run.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Optional

from ..errors import SimulationError

__all__ = ["DataLocation", "KernelSpec", "KernelLaunch"]


class DataLocation(enum.Enum):
    """Where a kernel reads its input from / writes its output to."""

    GLOBAL = "global"  # global memory (materialized array)
    CHANNEL = "channel"  # inter-kernel data channel (pipe)
    NONE = "none"  # no data on this side (e.g. reduce output is trivial)


@dataclass(frozen=True)
class KernelSpec:
    """Static description of a kernel, from off-line program analysis.

    ``compute_instr`` / ``memory_instr`` are per *input tuple*; they play
    the role of ``c_inst_Ki`` / ``m_inst_Ki`` in the paper (there per-kernel
    totals; the launch multiplies by tuple count).

    ``blocking`` marks kernels that must see their whole input before
    producing output (prefix sum, sort, hash build's barrier).  Blocking
    kernels end pipeline segments and force materialization.
    """

    name: str
    compute_instr: float
    memory_instr: float
    pm_per_workitem: int  # bytes of private memory (registers) per work-item
    lm_per_workitem: int  # bytes of local memory per work-item
    blocking: bool = False
    workgroup_size: int = 64

    def __post_init__(self) -> None:
        if self.compute_instr < 0 or self.memory_instr < 0:
            raise SimulationError(f"kernel {self.name!r}: negative instr count")
        if self.workgroup_size <= 0:
            raise SimulationError(f"kernel {self.name!r}: bad work-group size")

    @property
    def instr_per_tuple(self) -> float:
        """Total instructions per tuple (compute + memory issue)."""
        return self.compute_instr + self.memory_instr

    def scaled(self, factor: float) -> "KernelSpec":
        """A spec with instruction counts scaled (wider tuples, etc.)."""
        return replace(
            self,
            compute_instr=self.compute_instr * factor,
            memory_instr=self.memory_instr * factor,
        )


@dataclass(frozen=True)
class KernelLaunch:
    """One kernel invocation: a spec bound to data and a launch config.

    ``tuples`` is the number of input tuples this launch processes.
    ``selectivity`` is the fraction of tuples surviving to the output
    (``lambda`` in the paper's notation is expressed in bytes; here we keep
    tuple selectivity and byte widths separate so both engines account
    bytes identically).
    """

    spec: KernelSpec
    tuples: int
    workgroups: int
    in_bytes_per_tuple: int
    out_bytes_per_tuple: int
    selectivity: float = 1.0
    input_location: DataLocation = DataLocation.GLOBAL
    output_location: DataLocation = DataLocation.GLOBAL
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if self.tuples < 0:
            raise SimulationError("launch with negative tuple count")
        if self.workgroups <= 0:
            raise SimulationError("launch needs at least one work-group")
        if not 0.0 <= self.selectivity:
            raise SimulationError("selectivity must be non-negative")

    @property
    def display_name(self) -> str:
        return self.label or self.spec.name

    @property
    def input_bytes(self) -> int:
        """Total bytes read as primary input."""
        return self.tuples * self.in_bytes_per_tuple

    @property
    def output_tuples(self) -> int:
        """Expected output tuple count after selectivity."""
        return int(round(self.tuples * self.selectivity))

    @property
    def output_bytes(self) -> int:
        """Total bytes produced."""
        return self.output_tuples * self.out_bytes_per_tuple

    @property
    def tuples_per_workgroup(self) -> float:
        """Average input tuples processed by one work-group."""
        return self.tuples / self.workgroups if self.workgroups else 0.0

    def with_workgroups(self, workgroups: int) -> "KernelLaunch":
        """Copy with a different work-group count (resource-allocation knob)."""
        return replace(self, workgroups=workgroups)

    def with_tuples(self, tuples: int) -> "KernelLaunch":
        """Copy bound to a different amount of work (per-tile launches)."""
        return replace(self, tuples=tuples)
