"""The GPU simulator: exclusive (KBE) and pipelined (GPL) kernel execution.

Two execution modes mirror the two engines of the paper:

* :meth:`Simulator.run_exclusive` — one kernel owns the whole device, as in
  kernel-based execution.  Cost is the analytic two-resource model: vector
  ALU issue cycles and memory-unit cycles overlap only as far as the
  kernel's own occupancy allows latency hiding (few resident wavefronts =>
  additive costs, the under-utilization of Section 2.2).

* :meth:`Simulator.run_pipeline` — a segment's kernels run concurrently,
  connected by channels.  This is a discrete-event simulation at
  work-group granularity: producer work-groups reserve channel space
  before starting (backpressure), commit packets on completion, and the
  matching consumer work-group becomes ready immediately (the fine-grained
  coordination of Fig 9).  At most ``C`` kernels are resident at a time
  (2 on the AMD preset, 16 on NVIDIA); starvation and backpressure stalls
  accumulate into the *delay* counter, the measured twin of Eq. 8.

Both modes run on virtual cycles — no wall-clock, no randomness — so every
run is exactly reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..errors import (
    ChannelError,
    DeadlineExceededError,
    DeadlockSnapshot,
    PipelineDeadlockError,
    SimulationError,
    StageSnapshot,
)
from .channel import ChannelConfig, ChannelModel, ChannelState
from .counters import HardwareCounters, KernelRunStats
from .device import DeviceSpec
from .kernel import DataLocation, KernelLaunch
from .memory import MemoryModel
from .occupancy import (
    allocate_segment_occupancy,
    check_segment_feasible,
    exclusive_occupancy,
    max_active_wg_per_cu,
)
from .trace import TraceEvent
from ..obs.tracing import current_tracer

__all__ = ["StageSpec", "PipelineRunResult", "Simulator"]


@dataclass(frozen=True)
class StageSpec:
    """One kernel of a pipelined segment.

    ``aux_reads_per_tuple`` / ``aux_working_set_bytes`` describe side
    accesses to global structures (hash tables probed, dictionaries), which
    stay in global memory even in GPL.
    """

    launch: KernelLaunch
    aux_reads_per_tuple: float = 0.0
    aux_working_set_bytes: float = 0.0


@dataclass
class PipelineRunResult:
    """Outcome of one pipelined segment execution."""

    elapsed_cycles: float
    stage_stats: List[KernelRunStats]
    delay_cycles: float
    channel_bytes: float
    peak_channel_packets: Dict[int, int] = field(default_factory=dict)
    trace: List[TraceEvent] = field(default_factory=list)


class _StageRuntime:
    """Mutable per-stage state of the event simulation.

    A plain ``__slots__`` class (not a dataclass): one instance is
    touched on every event of the hot loop, and slot access skips the
    per-instance ``__dict__``.
    """

    __slots__ = (
        "index",
        "name",
        "service_cycles",
        "max_active",
        "total_units",
        "packets_in",
        "packets_out",
        "ready",
        "active",
        "completed",
        "busy_cycles",
        "delay_cycles",
        "idle_since",
    )

    def __init__(
        self,
        index: int,
        name: str,
        service_cycles: float,
        max_active: int,
        total_units: int,
        packets_in: int,
        packets_out: int,
    ):
        self.index = index
        self.name = name
        self.service_cycles = service_cycles
        self.max_active = max_active
        self.total_units = total_units
        self.packets_in = packets_in
        self.packets_out = packets_out
        self.ready = 0
        self.active = 0
        self.completed = 0
        self.busy_cycles = 0.0
        self.delay_cycles = 0.0
        self.idle_since: Optional[float] = 0.0  # stages start idle at t=0

    @property
    def finished(self) -> bool:
        return self.completed >= self.total_units


class Simulator:
    """Drives kernels over a :class:`DeviceSpec`, accumulating counters.

    An optional :class:`~repro.faults.FaultInjector` is consulted at the
    hook points of both execution modes (segment launch, kernel/unit
    completion, channel edges); without one, the hooks cost nothing.
    """

    def __init__(self, device: DeviceSpec, injector=None, cancellation=None):
        self.device = device
        self.memory = MemoryModel.for_device(device)
        self.channel_model = ChannelModel.for_device(device)
        self.counters = HardwareCounters(num_cus=device.num_cus)
        self.injector = injector
        #: Optional :class:`~repro.cancel.CancellationToken` consulted at
        #: segment boundaries and every event-loop step; ``None`` (the
        #: default) costs nothing on the hot path.
        self.cancellation = cancellation
        #: The pipeline/segment id currently executing (set by the engines
        #: via :meth:`begin_segment`); fault sites match against it.
        self.segment: str = ""

    def begin_segment(self, segment_id: str) -> None:
        """Mark segment entry: the launch point for segment-scoped faults."""
        self.segment = segment_id
        token = self.cancellation
        if token is not None and token.active:
            token.check(self.counters.elapsed_cycles, where=segment_id)
        if self.injector is not None:
            self.injector.on_segment_launch(
                segment_id, budget_bytes=float(self.device.global_mem_bytes)
            )

    def _watchdog(self, message: str, snapshot: DeadlockSnapshot) -> None:
        """Raise the right typed error for a pipeline that stopped.

        With no deadline armed a wedged pipeline is a
        :class:`PipelineDeadlockError` (retryable by fallback).  With a
        deadline armed the caller asked for a time bound, and a pipeline
        that can never finish *will* blow it — so the watchdog surfaces a
        deterministic :class:`DeadlineExceededError` instead of making
        the caller wait for the budget to drain.
        """
        token = self.cancellation
        if token is not None and token.deadline_cycles is not None:
            raise DeadlineExceededError(
                f"query {token.query or '?'}: pipeline stalled with a "
                f"deadline armed ({message})",
                query=token.query,
                deadline_cycles=token.deadline_cycles,
                elapsed_cycles=(
                    token.consumed_cycles
                    + self.counters.elapsed_cycles
                    + snapshot.cycle
                ),
                where=self.segment,
            )
        raise PipelineDeadlockError(message, snapshot)

    # ------------------------------------------------------------------
    # shared cost pieces
    # ------------------------------------------------------------------

    def _issue_cycles_per_tuple(self, launch: KernelLaunch) -> float:
        """VALU issue cycles contributed by one tuple (per paper Eq. 4)."""
        spec = launch.spec
        return (
            spec.instr_per_tuple
            * self.device.instruction_cycles
            / spec.workgroup_size
        )

    def _overlap_factor(self, active_per_cu: float) -> float:
        """How much memory latency resident wavefronts can hide.

        One resident work-group cannot overlap its own compute with its own
        outstanding loads (additive, Eq. 7's conservative form); each extra
        resident work-group hides more.
        """
        return 1.0 - 1.0 / max(1.0, active_per_cu)

    def _combine(self, compute: float, mem: float, overlap: float) -> float:
        """Wall cycles for overlapping compute and memory demand."""
        return max(compute, mem) + (1.0 - overlap) * min(compute, mem)

    # ------------------------------------------------------------------
    # exclusive (KBE) execution
    # ------------------------------------------------------------------

    def launch_overhead(self, launches: int = 1) -> None:
        """Charge fixed kernel-launch cost (host dispatch)."""
        self.counters.add_launch_overhead(
            self.device.launch_overhead_cycles * launches, launches
        )

    def run_exclusive(
        self,
        launch: KernelLaunch,
        input_working_set: Optional[float] = None,
        aux_reads_per_tuple: float = 0.0,
        aux_working_set_bytes: float = 0.0,
        count_materialization: bool = True,
        input_is_intermediate: bool = False,
    ) -> KernelRunStats:
        """Run one kernel with the whole device to itself (KBE mode).

        ``input_working_set`` drives the input cache-hit estimate; by
        default it is the launch's full input size (a fresh intermediate or
        base-table scan).  Engines pass the tile size for tiled variants.
        """
        occ = exclusive_occupancy(launch, self.device)
        cus_used = max(1, min(self.device.num_cus, launch.workgroups))
        tuples_per_cu = launch.tuples / cus_used

        compute_per_cu = tuples_per_cu * self._issue_cycles_per_tuple(launch)

        working_set = (
            launch.input_bytes if input_working_set is None else input_working_set
        )
        input_hit = self.memory.scan_hit_ratio(working_set)
        input_accesses = launch.spec.memory_instr * tuples_per_cu
        input_cost = self.memory.access_cycles(input_accesses, input_hit)
        mem_per_cu = input_cost
        # Communication stalls: intermediate ping-pong + aux structures.
        stall_per_cu = input_cost if input_is_intermediate else 0.0

        aux_hit = 1.0
        aux_accesses = 0.0
        if aux_reads_per_tuple > 0:
            # The streamed input competes with the probed structure for
            # cache capacity (same contention rule as the pipelined path).
            aux_hit = self.memory.cache.hit_ratio(
                aux_working_set_bytes
                + 0.5 * min(working_set, 4.0 * self.memory.cache.capacity_bytes)
            )
            aux_accesses = aux_reads_per_tuple * tuples_per_cu
            aux_cost = self.memory.access_cycles(aux_accesses, aux_hit)
            mem_per_cu += aux_cost
            stall_per_cu += aux_cost

        written = 0.0
        if launch.output_location is DataLocation.GLOBAL:
            written = float(launch.output_bytes)
            write_cost = self.memory.materialization_cycles(written / cus_used)
            mem_per_cu += write_cost
            stall_per_cu += write_cost

        active_per_cu = occ.active_workgroups / cus_used
        overlap = self._overlap_factor(active_per_cu)
        elapsed = self._combine(compute_per_cu, mem_per_cu, overlap)
        if launch.tuples > 0:
            elapsed = max(elapsed, 1.0)

        total_accesses = (input_accesses + aux_accesses) * cus_used
        total_hits = (
            input_accesses * input_hit + aux_accesses * aux_hit
        ) * cus_used

        stats = KernelRunStats(
            name=launch.display_name,
            elapsed_cycles=elapsed,
            compute_cycles=compute_per_cu * cus_used,
            memory_cycles=mem_per_cu * cus_used,
            stall_cycles=stall_per_cu * cus_used,
            tuples=launch.tuples,
            workgroups=launch.workgroups,
            active_workgroups=occ.active_workgroups,
            bytes_read=float(launch.input_bytes),
            bytes_written_global=written if count_materialization else 0.0,
            cache_hits=total_hits,
            cache_accesses=total_accesses,
        )
        if self.injector is not None:
            self.injector.on_kernel_complete(
                self.segment,
                launch.display_name,
                self.counters.elapsed_cycles + elapsed,
            )
        self.counters.record(stats)
        self.counters.add_elapsed(elapsed)
        token = self.cancellation
        if token is not None and token.active:
            token.check(
                self.counters.elapsed_cycles,
                where=self.segment or launch.display_name,
            )
        tracer = current_tracer()
        if tracer is not None:
            with tracer.span(
                "sim.kernel",
                category="simulator",
                kernel=launch.display_name,
                segment=self.segment or "?",
                tuples=launch.tuples,
            ):
                tracer.advance(elapsed)
        return stats

    # ------------------------------------------------------------------
    # pipelined (GPL) execution
    # ------------------------------------------------------------------

    def run_pipeline(
        self,
        stages: Sequence[StageSpec],
        channels: Sequence[ChannelConfig],
        num_tiles: int,
        tile_tuples: float,
        tile_bytes: float,
        contention_factor: float = 1.0,
        trace: bool = False,
    ) -> PipelineRunResult:
        """Simulate one segment: ``stages`` connected by ``channels``.

        ``num_tiles`` tiles of ``tile_tuples`` input tuples each stream
        through the chain.  ``len(channels)`` must be ``len(stages) - 1``.
        The unit of simulation is one work-group of the first stage and the
        corresponding work of every downstream stage (Fig 9's fine-grained
        producer/consumer coordination).
        """
        if not stages:
            raise SimulationError("pipeline needs at least one stage")
        if len(channels) != len(stages) - 1:
            raise SimulationError(
                f"{len(stages)} stages need {len(stages) - 1} channel "
                f"configs, got {len(channels)}"
            )
        launches = [stage.launch for stage in stages]
        if not check_segment_feasible(launches, self.device):
            raise SimulationError(
                "segment violates device resource limits (Eq. 2); "
                "reduce per-kernel work-group counts"
            )
        if num_tiles <= 0 or tile_tuples <= 0:
            return PipelineRunResult(0.0, [], 0.0, 0.0)
        tracer = current_tracer()
        want_trace = trace or tracer is not None
        trace_events: Optional[List[TraceEvent]] = [] if want_trace else None

        shares = dict(allocate_segment_occupancy(launches, self.device))
        # Only C kernels are resident at a time; a kernel's share of the
        # device while resident is therefore larger than a naive split
        # across every stage of a long segment.
        resident = max(1, min(len(stages), self.device.concurrency))
        boost = len(stages) / resident
        for launch in launches:
            share = shares[launch.display_name]
            solo_cap = max_active_wg_per_cu(launch.spec, self.device) * (
                self.device.num_cus / resident
            )
            boosted = min(
                float(launch.workgroups),
                solo_cap,
                share.active_workgroups * boost,
            )
            shares[launch.display_name] = type(share)(
                active_workgroups=max(1, int(boosted)),
                active_cus=share.active_cus * boost,
            )
        total_active_per_cu = (
            sum(s.active_workgroups for s in shares.values())
            * (resident / len(stages))
            / self.device.num_cus
        )
        overlap = self._overlap_factor(total_active_per_cu)

        units_per_tile = max(1, launches[0].workgroups)
        total_units = num_tiles * units_per_tile

        runtimes, per_unit_costs = self._build_stage_runtimes(
            stages, channels, shares, units_per_tile, tile_tuples,
            tile_bytes, total_units, overlap, contention_factor,
        )
        channel_states = [ChannelState(config) for config in channels]

        if self.injector is not None:
            self._apply_pipeline_faults(runtimes)

        elapsed = self._event_loop(
            runtimes, channel_states, total_units, trace_events
        )

        # Device-level resource bound: however well the pipeline overlaps,
        # the device cannot retire more VALU work than its CUs issue nor
        # more memory/channel traffic than its memory units serve.
        total_compute = sum(
            costs["compute"] * runtime.completed
            for costs, runtime in zip(per_unit_costs, runtimes)
        )
        total_memory = sum(
            (costs["memory"] + costs["channel"]) * runtime.completed
            for costs, runtime in zip(per_unit_costs, runtimes)
        )
        resource_floor = (
            max(total_compute, total_memory)
            / self.device.num_cus
            * contention_factor
        )
        elapsed = max(elapsed, resource_floor)

        # Pipeline delay (Eq. 8's measured twin): elapsed time beyond what
        # a perfectly packed schedule of the same work would need,
        # expressed in device-cycles so it is commensurable with the busy
        # counters.
        delay_total = max(0.0, elapsed - resource_floor) * self.device.num_cus

        stage_stats, channel_bytes = self._collect_stats(
            stages, runtimes, per_unit_costs, channel_states, elapsed,
            delay_total,
        )
        for stats in stage_stats:
            self.counters.record(stats)
        self.counters.add_elapsed(elapsed)
        if tracer is not None:
            self._trace_segment(
                tracer, runtimes, trace_events or [], elapsed, num_tiles
            )
        return PipelineRunResult(
            elapsed_cycles=elapsed,
            stage_stats=stage_stats,
            delay_cycles=delay_total,
            channel_bytes=channel_bytes,
            peak_channel_packets={
                i: state.peak_packets for i, state in enumerate(channel_states)
            },
            trace=trace_events or [],
        )

    def _trace_segment(
        self,
        tracer,
        runtimes: List[_StageRuntime],
        trace_events: List[TraceEvent],
        elapsed: float,
        num_tiles: int,
    ) -> None:
        """Mirror one pipelined segment into the ambient span tracer.

        By default each kernel stage becomes a single child span covering
        its first unit start to its last unit end (a serve drain's trace
        stays small); ``Tracer(capture_kernels=True)`` emits every
        work-group unit instead, matching :func:`render_gantt` detail.
        """
        with tracer.span(
            "sim.segment",
            category="simulator",
            segment=self.segment or "?",
            stages=len(runtimes),
            tiles=num_tiles,
        ) as segment_span:
            base = segment_span.start
            if tracer.capture_kernels:
                for event in trace_events:
                    tracer.add_span(
                        "sim.wg",
                        "simulator",
                        base + event.start,
                        base + event.end,
                        stage=event.label,
                    )
            else:
                windows: Dict[int, List[float]] = {}
                for event in trace_events:
                    window = windows.setdefault(
                        event.stage, [event.start, event.end]
                    )
                    window[0] = min(window[0], event.start)
                    window[1] = max(window[1], event.end)
                for runtime in runtimes:
                    window = windows.get(runtime.index)
                    if window is None:
                        continue
                    tracer.add_span(
                        "sim.stage",
                        "simulator",
                        base + window[0],
                        base + window[1],
                        stage=runtime.name,
                        units=runtime.completed,
                    )
            tracer.advance(elapsed)

    def _build_stage_runtimes(
        self,
        stages: Sequence[StageSpec],
        channels: Sequence[ChannelConfig],
        shares: Dict[str, "OccupancyShare"],
        units_per_tile: int,
        tile_tuples: float,
        tile_bytes: float,
        total_units: int,
        overlap: float,
        contention_factor: float = 1.0,
    ):
        """Precompute per-unit service times and packet counts per stage."""
        runtimes: List[_StageRuntime] = []
        per_unit_costs: List[dict] = []
        unit_tuples = tile_tuples / units_per_tile
        flow_bytes = tile_bytes  # bytes flowing per tile at current edge

        # The pipelined execution's working set: the tile plus every
        # channel flow alive at once (Section 3.3 — "the tile size
        # determines the working set size of performing the pipelined
        # execution").  It decides whether channel packets stay cached;
        # over-large tiles thrash here (Fig 12's right flank).
        working_set = tile_bytes
        probe_flow = tile_bytes
        for launch in [stage.launch for stage in stages][:-1]:
            probe_flow = max(
                1.0,
                probe_flow
                * launch.selectivity
                * (launch.out_bytes_per_tuple / max(1, launch.in_bytes_per_tuple)),
            )
            working_set += probe_flow

        for index, stage in enumerate(stages):
            launch = stage.launch
            share = shares[launch.display_name]

            compute = unit_tuples * self._issue_cycles_per_tuple(launch)

            mem = 0.0
            stall = 0.0
            channel_cost = 0.0
            packets_in = 0
            packets_out = 0
            accesses = 0.0
            hits = 0.0

            if index == 0:
                # First touch of a tile streams cold from global memory —
                # only spatial locality helps, regardless of tile size.
                # (Tile size influences *channel* traffic locality below.)
                hit = self.memory.cache.streaming_hit_ratio(8.0)
                input_accesses = launch.spec.memory_instr * unit_tuples
                mem += self.memory.access_cycles(input_accesses, hit)
                accesses += input_accesses
                hits += input_accesses * hit
            else:
                config = channels[index - 1]
                # A consumer work-group consumes exactly the packets its
                # producer committed, whatever widths either side declares.
                packets_in = runtimes[index - 1].packets_out
                stream = working_set
                # Reader reserves its read window once per work-group and
                # pays half the packet movement (the producer paid the
                # other half when writing).
                read_cost = self.channel_model.reservation_cycles(
                    config.num_channels
                ) + packets_in * (
                    self.channel_model.packet_transfer_cycles(config, stream)
                    / 2.0
                )
                channel_cost += read_cost

            if stage.aux_reads_per_tuple > 0:
                # The streamed tile and channel flows compete with the
                # probed structure for cache: big tiles evict hash tables.
                aux_hit = self.memory.cache.hit_ratio(
                    stage.aux_working_set_bytes + 0.5 * working_set
                )
                aux_accesses = stage.aux_reads_per_tuple * unit_tuples
                aux_cost = self.memory.access_cycles(aux_accesses, aux_hit)
                mem += aux_cost
                stall += aux_cost
                accesses += aux_accesses
                hits += aux_accesses * aux_hit

            out_tuples = unit_tuples * launch.selectivity
            out_bytes = out_tuples * launch.out_bytes_per_tuple
            if index < len(stages) - 1:
                config = channels[index]
                packets_out = config.packets_for(out_bytes)
                flow_out = flow_bytes * launch.selectivity * (
                    launch.out_bytes_per_tuple
                    / max(1, launch.in_bytes_per_tuple)
                )
                write_cost = self.channel_model.reservation_cycles(
                    config.num_channels
                ) + packets_out * (
                    self.channel_model.packet_transfer_cycles(
                        config, working_set
                    )
                    / 2.0
                )
                channel_cost += write_cost
                flow_bytes = max(1.0, flow_out)
            elif launch.output_location is DataLocation.GLOBAL:
                write_cost = self.memory.materialization_cycles(out_bytes)
                mem += write_cost
                stall += write_cost

            service = self._combine(compute, mem, overlap) + channel_cost
            service = max(service * contention_factor, 1.0)

            runtimes.append(
                _StageRuntime(
                    index=index,
                    name=launch.display_name,
                    service_cycles=service,
                    max_active=max(1, share.active_workgroups),
                    total_units=total_units,
                    packets_in=packets_in,
                    packets_out=packets_out,
                )
            )
            per_unit_costs.append(
                {
                    "compute": compute,
                    "memory": mem,
                    "stall": stall,
                    "channel": channel_cost,
                    "accesses": accesses,
                    "hits": hits,
                    "unit_tuples": unit_tuples,
                    "out_bytes": out_bytes,
                }
            )
            unit_tuples = out_tuples

        return runtimes, per_unit_costs

    def _apply_pipeline_faults(self, runtimes: List[_StageRuntime]) -> None:
        """Arm behavioural faults on this segment's stages.

        A *channel stall* wedges the matched stage — its consumer side
        never starts, so upstream producers fill the channel and block;
        the watchdog then reports the deadlock with a full snapshot.  A
        *channel overflow* rejects the matched producer's burst outright,
        as a real bounded pipe would when a reservation cannot ever fit.
        """
        for runtime in runtimes:
            if self.injector.stalls_stage(self.segment, runtime.name):
                runtime.max_active = 0
        for runtime in runtimes[:-1]:
            if self.injector.overflows_edge(self.segment, runtime.name):
                raise ChannelError(
                    f"injected channel overflow: stage {runtime.name!r} of "
                    f"segment {self.segment or '?'} cannot reserve "
                    f"{max(1, runtime.packets_out)} packets"
                )

    def _snapshot(
        self,
        runtimes: List[_StageRuntime],
        channel_states: List[ChannelState],
        now: float,
        last_progress: float,
    ) -> DeadlockSnapshot:
        return DeadlockSnapshot(
            segment=self.segment,
            cycle=now,
            last_progress_cycle=last_progress,
            stages=tuple(
                StageSnapshot(
                    index=r.index,
                    name=r.name,
                    completed=r.completed,
                    total=r.total_units,
                    ready=r.ready,
                    active=r.active,
                    max_active=r.max_active,
                    packets_out=r.packets_out,
                )
                for r in runtimes
            ),
            channels=tuple(
                state.snapshot(index)
                for index, state in enumerate(channel_states)
            ),
        )

    def _event_loop(
        self,
        runtimes: List[_StageRuntime],
        channel_states: List[ChannelState],
        total_units: int,
        trace_events: Optional[List[TraceEvent]] = None,
    ) -> float:
        """The discrete-event core: start/complete work-group units.

        Two watchdogs guard the loop: if the event heap drains with
        unfinished stages (producer/consumer deadlock: a full channel
        nobody drains, a wedged stage) a :class:`PipelineDeadlockError`
        with a diagnostic snapshot is raised, and a no-progress event
        budget bounds the loop so a buggy stage graph can never spin the
        simulator forever.

        **Fast path.**  Starting a work-group only *consumes* resources
        (a ready unit, an active slot, channel space, a residency slot),
        so one index-ordered greedy pass reaches the same fixpoint the
        historical repeat-until-no-progress loop did, and after a
        completion event at stage ``i`` the only stages whose blocking
        condition can have lifted are ``i - 1`` (channel space freed by
        the consume), ``i`` (active slot freed) and ``i + 1`` (new ready
        unit) — unless a residency slot was released, which can unblock
        any stage.  The loop therefore retries just that ready-set per
        event instead of re-scanning every stage, which also makes a
        burst of identical same-cycle completions cost O(1) scheduling
        work each.  True merging of same-cycle events would change which
        stage wins a contended residency slot (the greedy order is part
        of the model), so events stay individually ordered and the
        result — counters and trace alike — is bit-identical to the
        historical loop.
        """
        concurrency = self.device.concurrency
        last = len(runtimes) - 1
        for stage in runtimes[:-1]:
            capacity = channel_states[stage.index].config.capacity_packets
            if stage.packets_out > capacity:
                raise ChannelError(
                    f"stage {stage.name!r} emits {stage.packets_out} packets "
                    f"per work-group but the channel holds only {capacity}; "
                    "increase channel depth or work-group count"
                )
        runtimes[0].ready = total_units

        resident: set = set()
        heap: List = []
        sequence = itertools.count()
        now = 0.0
        heappush = heapq.heappush
        heappop = heapq.heappop

        def try_start(stage: _StageRuntime) -> bool:
            if stage.ready <= 0 or stage.active >= stage.max_active:
                return False
            index = stage.index
            if index not in resident and len(resident) >= concurrency:
                return False
            packets_out = stage.packets_out
            if index < last and packets_out > 0:
                channel = channel_states[index]
                if not channel.can_reserve(packets_out):
                    return False
                channel.reserve(packets_out)
            if stage.idle_since is not None:
                stage.delay_cycles += now - stage.idle_since
                stage.idle_since = None
            stage.ready -= 1
            stage.active += 1
            resident.add(index)
            end = now + stage.service_cycles
            if trace_events is not None:
                trace_events.append(
                    TraceEvent(
                        stage=index,
                        label=stage.name,
                        start=now,
                        end=end,
                    )
                )
            heappush(heap, (end, next(sequence), index))
            return True

        def start_some(stages) -> None:
            # One ascending-index greedy pass; see the fast-path note.
            for stage in stages:
                if stage.ready <= 0 or stage.active >= stage.max_active:
                    continue
                while try_start(stage):
                    pass

        start_some(runtimes)
        if not heap:
            self._watchdog(
                "pipeline cannot start: no runnable work",
                self._snapshot(runtimes, channel_states, 0.0, 0.0),
            )

        # Cooperative cancellation: precompute the in-run cycle at which
        # the query's deadline lands so the per-event check is one float
        # comparison (and skipped entirely when no token is armed).
        token = self.cancellation
        deadline_now = None
        if token is not None and token.active:
            deadline_now = (
                -1.0
                if token.cancelled
                else token.remaining_cycles(self.counters.elapsed_cycles)
            )

        # No-progress budget: every event retires exactly one work-group
        # unit, so a healthy run processes at most stages x units events.
        # Anything beyond (with slack) means the loop is spinning.
        events_budget = 3 * total_units * len(runtimes) + 64
        events = 0
        last_progress = 0.0
        injector = self.injector

        while heap:
            now, _, index = heappop(heap)
            if deadline_now is not None and now > deadline_now:
                token.check(
                    self.counters.elapsed_cycles + now, where=self.segment
                )
            events += 1
            if events > events_budget:
                self._watchdog(
                    f"pipeline exceeded its no-progress budget "
                    f"({events_budget} events) without finishing",
                    self._snapshot(
                        runtimes, channel_states, now, last_progress
                    ),
                )
            last_progress = now
            stage = runtimes[index]
            stage.active -= 1
            stage.completed += 1
            stage.busy_cycles += stage.service_cycles
            if injector is not None:
                injector.on_kernel_complete(self.segment, stage.name, now)
            if index > 0 and stage.packets_in > 0:
                channel_states[index - 1].consume(stage.packets_in)
            if index < last:
                if stage.packets_out > 0:
                    channel_states[index].commit(stage.packets_out)
                runtimes[index + 1].ready += 1
            released_residency = False
            if stage.active == 0:
                if stage.completed >= stage.total_units:
                    resident.discard(index)
                    released_residency = True
                else:
                    stage.idle_since = now
            if released_residency:
                start_some(runtimes)
            else:
                start_some(runtimes[max(0, index - 1) : index + 2])
            # Any stage that still has no active unit after the greedy pass
            # is either out of work or blocked on a full channel; either way
            # it frees its residency slot so the ACE can swap in another
            # kernel (interleaved execution) — e.g. the consumer that must
            # drain the very channel blocking it.
            stalled = False
            for other in runtimes:
                if other.active == 0 and other.index in resident:
                    resident.discard(other.index)
                    stalled = True
            if stalled:
                start_some(runtimes)

        unfinished = [s.name for s in runtimes if not s.finished]
        if unfinished:
            self._watchdog(
                f"pipeline deadlocked with unfinished stages: {unfinished}",
                self._snapshot(runtimes, channel_states, now, last_progress),
            )
        return now

    def _collect_stats(
        self,
        stages: Sequence[StageSpec],
        runtimes: List[_StageRuntime],
        per_unit_costs: List[dict],
        channel_states: List[ChannelState],
        elapsed: float,
        delay_total: float,
    ):
        """Convert event-sim results into :class:`KernelRunStats`.

        The segment-level delay is attributed to stages in proportion to
        their raw starvation time (the event loop's per-stage idle
        accounting), so the most-starved kernels carry the imbalance.
        """
        stage_stats: List[KernelRunStats] = []
        channel_bytes = float(
            sum(state.total_bytes for state in channel_states)
        )
        total_idle = sum(runtime.delay_cycles for runtime in runtimes)
        for runtime in runtimes:
            share = (
                runtime.delay_cycles / total_idle if total_idle > 0 else 0.0
            )
            runtime.delay_cycles = delay_total * share
        last = len(runtimes) - 1
        for stage, runtime, costs in zip(stages, runtimes, per_unit_costs):
            launch = stage.launch
            units = runtime.completed
            written = 0.0
            if (
                runtime.index == last
                and launch.output_location is DataLocation.GLOBAL
            ):
                written = costs["out_bytes"] * units
            stage_stats.append(
                KernelRunStats(
                    name=launch.display_name,
                    elapsed_cycles=elapsed,
                    compute_cycles=costs["compute"] * units,
                    memory_cycles=costs["memory"] * units,
                    stall_cycles=costs["stall"] * units,
                    channel_cycles=costs["channel"] * units,
                    delay_cycles=runtime.delay_cycles,
                    tuples=int(costs["unit_tuples"] * units),
                    workgroups=launch.workgroups,
                    active_workgroups=runtime.max_active,
                    bytes_read=float(launch.input_bytes),
                    bytes_written_global=written,
                    bytes_channel=float(
                        channel_states[runtime.index].total_bytes
                        if runtime.index < last
                        else 0.0
                    ),
                    cache_hits=costs["hits"] * units,
                    cache_accesses=costs["accesses"] * units,
                )
            )
        return stage_stats, channel_bytes
