"""Execution traces: inspect how a pipelined segment actually ran.

`Simulator.run_pipeline(..., trace=True)` records one
:class:`TraceEvent` per executed work-group unit; :func:`render_gantt`
turns the trace into a text Gantt chart — one row per kernel, time
bucketed across the terminal width — which makes pipeline fill, overlap,
starvation, and backpressure visible at a glance.

::

    k_map#0      ▕████████████████████▆▁        ▏
    k_probe#1    ▕  ▂███████████████████▆▁      ▏
    k_reduce*#2  ▕    ▂█████████████████████▆   ▏
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

__all__ = ["TraceEvent", "render_gantt", "stage_utilization"]

#: Glyphs from empty to full occupancy of a time bucket.
_LEVELS = " ▁▂▃▄▅▆▇█"


@dataclass(frozen=True)
class TraceEvent:
    """One work-group unit's execution interval on one pipeline stage."""

    stage: int
    label: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


def _stage_order(events: Sequence[TraceEvent]) -> List[int]:
    seen: Dict[int, str] = {}
    for event in events:
        seen.setdefault(event.stage, event.label)
    return sorted(seen)


def stage_utilization(
    events: Sequence[TraceEvent], elapsed: float
) -> Dict[str, float]:
    """Fraction of the run each stage had at least one unit in flight."""
    if elapsed <= 0:
        return {}
    result: Dict[str, float] = {}
    for stage in _stage_order(events):
        intervals = sorted(
            (event.start, event.end)
            for event in events
            if event.stage == stage
        )
        label = next(e.label for e in events if e.stage == stage)
        covered = 0.0
        cursor = None
        for start, end in intervals:
            if cursor is None or start > cursor:
                covered += end - start
                cursor = end
            elif end > cursor:
                covered += end - cursor
                cursor = end
        result[label] = min(1.0, covered / elapsed)
    return result


def render_gantt(
    events: Sequence[TraceEvent],
    elapsed: float,
    width: int = 60,
) -> str:
    """Text Gantt chart: per stage, per time bucket, how many units ran.

    Bucket intensity is the overlap-weighted occupancy normalized to the
    busiest bucket of that stage.
    """
    if not events or elapsed <= 0:
        return "(no trace events)"
    bucket = elapsed / width
    lines = []
    label_width = max(len(event.label) for event in events)
    for stage in _stage_order(events):
        occupancy = [0.0] * width
        label = ""
        for event in events:
            if event.stage != stage:
                continue
            label = event.label
            first = min(width - 1, int(event.start / bucket))
            last = min(width - 1, int(max(event.start, event.end - 1e-12) / bucket))
            for index in range(first, last + 1):
                lo = max(event.start, index * bucket)
                hi = min(event.end, (index + 1) * bucket)
                if hi > lo:
                    occupancy[index] += (hi - lo) / bucket
        peak = max(occupancy) or 1.0
        cells = "".join(
            _LEVELS[min(len(_LEVELS) - 1, int(value / peak * (len(_LEVELS) - 1)))]
            for value in occupancy
        )
        lines.append(f"{label.ljust(label_width)}  ▕{cells}▏")
    return "\n".join(lines)
