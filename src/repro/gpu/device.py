"""Device specifications for the simulated GPUs.

The two presets mirror Table 1 of the paper: the AMD A10 APU (coupled
CPU-GPU, OpenCL, 2 concurrent kernels via ACEs) and the NVIDIA Tesla K40
(Kepler, CUDA, 16 concurrent kernels).  Latency figures are not in Table 1;
they are representative numbers for the respective memory hierarchies and
only their *ratios* matter for the reproduced shapes (global vs cache
latency is what makes channel communication cheaper than ping-pong through
global memory).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["DeviceSpec", "AMD_A10", "NVIDIA_K40", "device_by_name"]

KIB = 1024
MIB = 1024 * 1024
GIB = 1024 * 1024 * 1024


@dataclass(frozen=True)
class DeviceSpec:
    """Static hardware description consumed by the simulator and cost model.

    Attributes mirror the cost-model notation of the paper (Table 2,
    "platform input"):

    * ``num_cus`` — #CU
    * ``instruction_cycles`` — w, cycles to issue and execute one instruction
    * ``concurrency`` — C, concurrent kernel slots
    * ``global_latency`` — mem_l, cycles per uncached memory transaction
    * ``cache_latency`` — c_l, cycles per cache-hit transaction
    * ``private_mem_per_cu`` — pm_max (bytes)
    * ``local_mem_per_cu`` — lm_max (bytes)
    * ``max_wg_per_cu`` — wg_max
    """

    name: str
    vendor: str
    num_cus: int
    core_mhz: float
    private_mem_per_cu: int
    local_mem_per_cu: int
    global_mem_bytes: int
    cache_bytes: int
    concurrency: int
    wavefront: int
    max_wg_per_cu: int
    instruction_cycles: float
    global_latency: float
    cache_latency: float
    memory_parallelism: float
    programming_api: str
    tunable_packet_size: bool
    #: Fixed host-side cost to launch one kernel, in device cycles.  This is
    #: what makes tiling *without* concurrent execution slower than KBE
    #: (Fig 16 / Fig 27): every tile re-launches every kernel.
    launch_overhead_cycles: float = 15000.0
    #: Workload-scheduler cost to dispatch one tile into a resident
    #: pipeline (Section 3.1's scheduler).  Small tiles pay it often —
    #: the left flank of the Fig 12 U-curve.
    tile_dispatch_cycles: float = 2500.0

    def cycles_to_ms(self, cycles: float) -> float:
        """Convert simulated cycles to milliseconds at the core clock."""
        return cycles / (self.core_mhz * 1_000.0)

    def ms_to_cycles(self, ms: float) -> float:
        """Inverse of :meth:`cycles_to_ms`."""
        return ms * self.core_mhz * 1_000.0

    def with_overrides(self, **kwargs) -> "DeviceSpec":
        """A copy with selected fields replaced (testing / what-if studies)."""
        return replace(self, **kwargs)

    def table1_row(self) -> dict:
        """The fields reported in Table 1 of the paper."""
        return {
            "#CU": self.num_cus,
            "Core frequency (MHz)": self.core_mhz,
            "Private memory/CU (KB)": self.private_mem_per_cu // KIB,
            "Local memory/CU (KB)": self.local_mem_per_cu // KIB,
            "Global memory (GB)": self.global_mem_bytes // GIB,
            "Cache (MB)": self.cache_bytes / MIB,
            "Concurrent kernels": self.concurrency,
            "Programming API": self.programming_api,
        }


#: AMD A10 APU (Table 1, left column).  The GPU shares system memory (32 GB).
AMD_A10 = DeviceSpec(
    name="AMD A10 APU",
    vendor="AMD",
    num_cus=8,
    core_mhz=720.0,
    private_mem_per_cu=64 * KIB,
    local_mem_per_cu=32 * KIB,
    global_mem_bytes=32 * GIB,
    cache_bytes=4 * MIB,
    concurrency=2,
    wavefront=64,
    max_wg_per_cu=16,
    instruction_cycles=4.0,
    global_latency=300.0,
    cache_latency=60.0,
    memory_parallelism=64.0,
    programming_api="OpenCL",
    tunable_packet_size=True,
)

#: NVIDIA Tesla K40 (Table 1, right column).  12 GB device memory; packet
#: size is not user-tunable (Appendix A.1).
NVIDIA_K40 = DeviceSpec(
    name="NVIDIA Tesla K40",
    vendor="NVIDIA",
    num_cus=15,
    core_mhz=875.0,
    private_mem_per_cu=64 * KIB,
    local_mem_per_cu=48 * KIB,
    global_mem_bytes=12 * GIB,
    cache_bytes=int(1.5 * MIB),
    concurrency=16,
    wavefront=32,
    max_wg_per_cu=16,
    instruction_cycles=4.0,
    global_latency=400.0,
    cache_latency=80.0,
    memory_parallelism=96.0,
    programming_api="CUDA",
    tunable_packet_size=False,
)

_DEVICES = {"amd": AMD_A10, "nvidia": NVIDIA_K40}


def device_by_name(name: str) -> DeviceSpec:
    """Look up a preset by vendor name (case-insensitive)."""
    try:
        return _DEVICES[name.strip().lower()]
    except KeyError:
        raise ValueError(
            f"unknown device {name!r}; choose one of {sorted(_DEVICES)}"
        ) from None
