"""Simulated GPU substrate.

Everything the paper obtains from real AMD/NVIDIA hardware is modeled
here: device specifications (Table 1 presets), kernel descriptions,
occupancy (Eq. 2), a working-set cache, the global memory model, data
channels (OpenCL 2.0 pipes), exclusive and pipelined execution, and the
profiler counters the evaluation section reads.
"""

from .cache import CacheModel
from .channel import ChannelConfig, ChannelModel, ChannelState
from .counters import HardwareCounters, KernelRunStats
from .device import AMD_A10, NVIDIA_K40, DeviceSpec, device_by_name
from .kernel import DataLocation, KernelLaunch, KernelSpec
from .memory import MemoryModel
from .occupancy import (
    OccupancyShare,
    allocate_segment_occupancy,
    check_segment_feasible,
    exclusive_occupancy,
    max_active_wg_per_cu,
)
from .profiler import KernelProfile, Profiler, ProfilerReport
from .simulator import PipelineRunResult, Simulator, StageSpec
from .trace import TraceEvent, render_gantt, stage_utilization

__all__ = [
    "CacheModel",
    "ChannelConfig",
    "ChannelModel",
    "ChannelState",
    "HardwareCounters",
    "KernelRunStats",
    "AMD_A10",
    "NVIDIA_K40",
    "DeviceSpec",
    "device_by_name",
    "DataLocation",
    "KernelLaunch",
    "KernelSpec",
    "MemoryModel",
    "OccupancyShare",
    "allocate_segment_occupancy",
    "check_segment_feasible",
    "exclusive_occupancy",
    "max_active_wg_per_cu",
    "KernelProfile",
    "Profiler",
    "ProfilerReport",
    "PipelineRunResult",
    "Simulator",
    "StageSpec",
    "TraceEvent",
    "render_gantt",
    "stage_utilization",
]
