"""CodeXL / Visual Profiler stand-in: turns counters into profiler reports.

The paper reads VALUBusy, MemUnitBusy, kernel occupancy, and cache hit
ratios from vendor profilers; engines here expose the same numbers through
:class:`Profiler`, computed from the simulator's accumulated counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .counters import HardwareCounters, KernelRunStats
from .device import DeviceSpec

__all__ = ["KernelProfile", "ProfilerReport", "Profiler"]


@dataclass(frozen=True)
class KernelProfile:
    """Per-kernel profiler row."""

    name: str
    elapsed_ms: float
    valu_busy: float
    mem_unit_busy: float
    occupancy: float
    cache_hit_ratio: float
    tuples: int


@dataclass(frozen=True)
class ProfilerReport:
    """Whole-run profiler output."""

    device: str
    elapsed_ms: float
    valu_busy: float
    mem_unit_busy: float
    cache_hit_ratio: float
    kernel_launches: int
    bytes_materialized: float
    bytes_channel: float
    delay_cycles: float
    breakdown: Dict[str, float]
    kernels: List[KernelProfile]


class Profiler:
    """Builds :class:`ProfilerReport` objects from hardware counters."""

    def __init__(self, device: DeviceSpec):
        self._device = device

    def kernel_profile(self, stats: KernelRunStats) -> KernelProfile:
        if stats.elapsed_cycles <= 0:
            # Empty-result segments retire no cycles; the epsilon trick
            # used to report valu_busy = 1.0 for them (compute / ~0).
            # A kernel that never ran kept no unit busy.
            return KernelProfile(
                name=stats.name,
                elapsed_ms=0.0,
                valu_busy=0.0,
                mem_unit_busy=0.0,
                occupancy=stats.occupancy,
                cache_hit_ratio=stats.cache_hit_ratio,
                tuples=stats.tuples,
            )
        busy_denominator = self._device.num_cus * stats.elapsed_cycles
        return KernelProfile(
            name=stats.name,
            elapsed_ms=self._device.cycles_to_ms(stats.elapsed_cycles),
            valu_busy=min(1.0, stats.compute_cycles / busy_denominator),
            mem_unit_busy=min(1.0, stats.memory_cycles / busy_denominator),
            occupancy=stats.occupancy,
            cache_hit_ratio=stats.cache_hit_ratio,
            tuples=stats.tuples,
        )

    def report(self, counters: HardwareCounters) -> ProfilerReport:
        return ProfilerReport(
            device=self._device.name,
            elapsed_ms=self._device.cycles_to_ms(counters.elapsed_cycles),
            valu_busy=counters.valu_busy,
            mem_unit_busy=counters.mem_unit_busy,
            cache_hit_ratio=counters.cache_hit_ratio,
            kernel_launches=counters.kernel_launches,
            bytes_materialized=counters.bytes_materialized,
            bytes_channel=counters.bytes_channel,
            delay_cycles=counters.delay_cycles,
            breakdown=counters.breakdown(),
            kernels=[self.kernel_profile(k) for k in counters.kernel_stats],
        )
