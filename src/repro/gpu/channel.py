"""Inter-kernel data channels (OpenCL 2.0 pipes / CUDA direct transfer).

A channel passes packets between two concurrently running kernels without
materializing them in global memory (paper Section 2.1 / 3.4).  Three
parameters govern it — the number of channels ``n``, the packet size ``p``
(AMD only; NVIDIA's is fixed), and the data volume ``d`` streamed through —
and the paper calibrates throughput as Γ(n, p, d).

This module provides:

* :class:`ChannelConfig` — the (n, p, depth) tuple;
* :class:`ChannelModel` — the per-packet cost function the simulator
  charges for reservations and transfers.  Its structure encodes the three
  calibrated effects of Fig 2/23: reservation contention relieved by more
  channels, per-channel management cost growing with ``n``, and cache
  thrashing once the streamed volume outgrows the data cache;
* :class:`ChannelState` — the runtime bounded buffer used by the
  discrete-event pipeline simulator (occupancy, backpressure).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ChannelError, ChannelSnapshot
from .cache import CacheModel
from .device import DeviceSpec

__all__ = ["ChannelConfig", "ChannelModel", "ChannelState"]

#: Paper default: "The channel packet size is set as 16 bytes, which
#: achieves the best efficiency in most scenarios."
DEFAULT_PACKET_BYTES = 16
DEFAULT_DEPTH_PACKETS = 2048
MAX_CHANNELS = 32


@dataclass(frozen=True)
class ChannelConfig:
    """One channel binding between a producer and a consumer kernel."""

    num_channels: int = 4
    packet_bytes: int = DEFAULT_PACKET_BYTES
    depth_packets: int = DEFAULT_DEPTH_PACKETS

    def __post_init__(self) -> None:
        if not 1 <= self.num_channels <= MAX_CHANNELS:
            raise ChannelError(
                f"number of channels must be in [1, {MAX_CHANNELS}]"
            )
        if self.packet_bytes < 4 or self.packet_bytes > 4096:
            raise ChannelError("packet size must be in [4, 4096] bytes")
        if self.depth_packets < 1:
            raise ChannelError("channel depth must be positive")

    @property
    def capacity_packets(self) -> int:
        """Total in-flight packets across all channels of the binding."""
        return self.num_channels * self.depth_packets

    @property
    def capacity_bytes(self) -> int:
        return self.capacity_packets * self.packet_bytes

    def packets_for(self, nbytes: float) -> int:
        """Packets needed to carry ``nbytes`` (ceil division)."""
        if nbytes <= 0:
            return 0
        return int(-(-nbytes // self.packet_bytes))


@dataclass(frozen=True)
class ChannelModel:
    """Cycle costs of channel operations on a given device.

    Per-packet cost = reservation overhead + payload transfer.  The
    reservation overhead over ``n`` channels is::

        resv(n) = contention / n + base + management * n

    — contention on the channel's atomic reservation counters is divided
    across channels, while bookkeeping grows with the channel count; the
    sum is U-shaped with a minimum in the 4–16 range, matching the paper's
    observation that "the throughput of data channels continues to drop
    when the number of channels is over 16".

    Payload transfer cost depends on whether the packets are still
    cache-resident when the consumer reads them, which the working-set
    cache model decides from the total volume ``d`` streamed per burst.
    """

    device: DeviceSpec
    cache: CacheModel
    reservation_contention: float = 96.0
    reservation_base: float = 6.0
    reservation_management: float = 0.5
    #: Commit/visibility bookkeeping charged per packet (cheap: the
    #: expensive reservation happens once per work-group, Fig 9).
    per_packet_base: float = 0.5
    #: Atomic head/tail contention among concurrent committers is divided
    #: across channels: the benefit of using more than one channel.
    per_packet_contention: float = 8.0
    #: Per-packet cost of managing many channels (index selection,
    #: per-channel state): this is what makes throughput "continue to
    #: drop when the number of channels is over 16".
    per_packet_channel_cost: float = 0.05
    #: Register pressure of staging one packet in private memory grows
    #: superlinearly with packet size (spilling); this is why ~16-byte
    #: packets "achieve the best efficiency in most scenarios".
    packet_spill_divisor: float = 16.0

    @classmethod
    def for_device(cls, device: DeviceSpec) -> "ChannelModel":
        return cls(device=device, cache=CacheModel(device.cache_bytes))

    def reservation_cycles(self, num_channels: int) -> float:
        """Reserve+commit cost charged once per work-group burst.

        OpenCL pipes reserve space for a work-group's whole output with one
        atomic transaction (``reserve_write_pipe``); only this fee contends
        across channels (Fig 9's light-weight synchronization).
        """
        return (
            self.reservation_contention / num_channels
            + self.reservation_base
            + self.reservation_management * num_channels
        )

    def stream_hit_ratio(self, stream_bytes: float) -> float:
        """Cache hit ratio for packets of a burst of ``stream_bytes``."""
        return self.cache.hit_ratio(stream_bytes)

    def packet_transfer_cycles(
        self, config: ChannelConfig, stream_bytes: float
    ) -> float:
        """Cycles to move one packet's payload producer -> consumer."""
        hit = self.stream_hit_ratio(stream_bytes)
        lines = max(1.0, config.packet_bytes / 64.0)
        latency = (
            hit * self.device.cache_latency
            + (1.0 - hit) * self.device.global_latency
        )
        overhead = (
            self.per_packet_base
            + self.per_packet_contention / config.num_channels
            + self.per_packet_channel_cost * config.num_channels
            + (config.packet_bytes / self.packet_spill_divisor) ** 2
        )
        return overhead + lines * latency / self.device.memory_parallelism

    def packet_cycles_per_byte(
        self, config: ChannelConfig, stream_bytes: float = 0.0
    ) -> float:
        """Per-byte transfer cost of the configuration (cached stream by
        default); a convenient scalar for comparing channel settings."""
        return (
            self.packet_transfer_cycles(config, stream_bytes)
            / config.packet_bytes
        )

    def burst_cycles(
        self,
        burst_bytes: float,
        config: ChannelConfig,
        stream_bytes: float,
    ) -> float:
        """One work-group's write burst: one reservation + its packets."""
        packets = config.packets_for(burst_bytes)
        return self.reservation_cycles(
            config.num_channels
        ) + packets * self.packet_transfer_cycles(config, stream_bytes)

    def transfer_cycles(
        self,
        nbytes: float,
        config: ChannelConfig,
        stream_bytes: float = None,
        burst_bytes: float = 16 * 1024,
    ) -> float:
        """Total one-direction cycles to stream ``nbytes`` through a binding.

        This closed form is what the analytical model's Γ interpolation is
        validated against; the event simulator charges the same per-burst
        costs but additionally exposes pipelining and backpressure.
        """
        if stream_bytes is None:
            stream_bytes = nbytes
        packets = config.packets_for(nbytes)
        bursts = max(1.0, nbytes / burst_bytes)
        return bursts * self.reservation_cycles(
            config.num_channels
        ) + packets * self.packet_transfer_cycles(config, stream_bytes)

    def throughput_gbps(
        self, nbytes: float, config: ChannelConfig
    ) -> float:
        """Closed-form throughput (GB/s) of one burst; used as a sanity twin
        of the calibrated Γ (the calibration measures via the simulator)."""
        cycles = self.transfer_cycles(nbytes, config)
        if cycles <= 0:
            return 0.0
        seconds = cycles / (self.device.core_mhz * 1e6)
        return nbytes / 1e9 / seconds


class ChannelState:
    """Runtime occupancy of one channel binding during pipeline simulation.

    The producer reserves space for its packets before starting a
    work-group (OpenCL ``reserve_write_pipe`` semantics); the consumer
    frees space when a work-group finishes reading.  ``peak_packets`` is
    recorded for diagnostics and model validation.

    A ``__slots__`` class rather than a dataclass: the simulator touches
    these fields on every event, and slot access keeps that hot path off
    the instance ``__dict__``.
    """

    __slots__ = (
        "config",
        "buffered_packets",
        "reserved_packets",
        "total_packets",
        "peak_packets",
        "_closed",
    )

    def __init__(
        self,
        config: ChannelConfig,
        buffered_packets: int = 0,
        reserved_packets: int = 0,
        total_packets: int = 0,
        peak_packets: int = 0,
    ) -> None:
        self.config = config
        self.buffered_packets = buffered_packets
        self.reserved_packets = reserved_packets
        self.total_packets = total_packets
        self.peak_packets = peak_packets
        self._closed = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ChannelState(config={self.config!r}, "
            f"buffered_packets={self.buffered_packets}, "
            f"reserved_packets={self.reserved_packets}, "
            f"total_packets={self.total_packets}, "
            f"peak_packets={self.peak_packets})"
        )

    @property
    def in_flight(self) -> int:
        return self.buffered_packets + self.reserved_packets

    def can_reserve(self, packets: int) -> bool:
        """Whether the producer may start a work-group needing ``packets``."""
        return self.in_flight + packets <= self.config.capacity_packets

    def reserve(self, packets: int) -> None:
        if not self.can_reserve(packets):
            raise ChannelError("reserve beyond channel capacity")
        self.reserved_packets += packets

    def commit(self, packets: int) -> None:
        """Producer work-group finished: its packets become visible."""
        if packets > self.reserved_packets:
            raise ChannelError("commit without matching reservation")
        self.reserved_packets -= packets
        self.buffered_packets += packets
        self.total_packets += packets
        self.peak_packets = max(self.peak_packets, self.in_flight)

    def consume(self, packets: int) -> None:
        """Consumer work-group finished reading ``packets``."""
        if packets > self.buffered_packets:
            raise ChannelError("consume more packets than buffered")
        self.buffered_packets -= packets

    @property
    def total_bytes(self) -> int:
        return self.total_packets * self.config.packet_bytes

    @property
    def occupancy(self) -> float:
        """In-flight fraction of capacity (1.0 = fully backpressured)."""
        return self.in_flight / self.config.capacity_packets

    def snapshot(self, edge: int) -> ChannelSnapshot:
        """Freeze the edge's occupancy for a watchdog diagnostic."""
        return ChannelSnapshot(
            edge=edge,
            buffered_packets=self.buffered_packets,
            reserved_packets=self.reserved_packets,
            capacity_packets=self.config.capacity_packets,
            total_packets=self.total_packets,
        )
