"""Working-set cache model.

The simulator does not track individual cache lines; it uses the classic
working-set approximation: accesses hit while the working set fits in the
cache, and the hit ratio decays once the working set exceeds capacity
(thrashing).  This single model produces both paper phenomena we must
reproduce:

* **Fig 2 / Fig 23** — channel throughput drops once the data streamed
  through the channel outgrows the data cache;
* **Fig 12 / Fig 25** — query runtime rises again for over-large tiles.

The decay is ``capacity / working_set`` softened by a ``retention`` exponent
(pure LRU streaming would be a hard cliff; real caches keep a useful
fraction through partial reuse, so measurements show a smooth knee).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CacheModel"]


@dataclass(frozen=True)
class CacheModel:
    """Capacity-based hit-ratio estimator for one cache level."""

    capacity_bytes: int
    #: Fraction of capacity usable by one streaming working set (the rest is
    #: occupied by other kernels' code/tables and by the streamed inputs).
    usable_fraction: float = 0.75
    #: Softening exponent for the over-capacity decay (1.0 = pure 1/x).
    retention: float = 0.9
    #: Hit floor: even fully thrashing streams hit on spatial locality
    #: within a cache line.
    floor: float = 0.05

    @property
    def effective_capacity(self) -> float:
        return self.capacity_bytes * self.usable_fraction

    def hit_ratio(self, working_set_bytes: float) -> float:
        """Expected hit ratio for a working set of the given size."""
        if working_set_bytes <= 0:
            return 1.0
        capacity = self.effective_capacity
        if working_set_bytes <= capacity:
            return 1.0
        ratio = (capacity / working_set_bytes) ** self.retention
        return max(self.floor, min(1.0, ratio))

    def streaming_hit_ratio(self, stride_bytes: float, line_bytes: float = 64.0) -> float:
        """Hit ratio of a pure streaming scan (spatial locality only).

        A sequential scan with element size ``stride_bytes`` hits on
        ``1 - stride/line`` of accesses because one line fetch serves
        ``line/stride`` consecutive elements.
        """
        if stride_bytes <= 0:
            return 1.0
        if stride_bytes >= line_bytes:
            return self.floor
        return max(self.floor, 1.0 - stride_bytes / line_bytes)
