"""Occupancy: how many work-groups can be resident, per the paper's Eq. 2.

Eq. 2 constrains, for all kernels of a segment executing concurrently::

    sum_i pm_Ki * wi_Ki * wg_Ki <= pm_max * #CU
    sum_i lm_Ki * wi_Ki * wg_Ki <= lm_max * #CU
    sum_i wg_Ki                 <= wg_max * #CU

This module provides the single-kernel active-work-group bound (the
classic occupancy calculation), the segment-level feasibility check, and a
proportional allocator that splits device resources among the concurrently
resident kernels of a segment — the simulator's counterpart of the GPU's
hardware work-group dispatcher.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..errors import OccupancyError
from .device import DeviceSpec
from .kernel import KernelLaunch, KernelSpec

__all__ = [
    "max_active_wg_per_cu",
    "check_segment_feasible",
    "OccupancyShare",
    "allocate_segment_occupancy",
]


def max_active_wg_per_cu(spec: KernelSpec, device: DeviceSpec) -> int:
    """Max work-groups of ``spec`` simultaneously resident on one CU.

    Limited by private memory, local memory, and the device's architectural
    work-group cap.  This is ``a_wg_Ki`` for a kernel running alone.
    """
    limits: List[float] = [float(device.max_wg_per_cu)]
    pm_per_wg = spec.pm_per_workitem * spec.workgroup_size
    if pm_per_wg > 0:
        limits.append(device.private_mem_per_cu / pm_per_wg)
    lm_per_wg = spec.lm_per_workitem * spec.workgroup_size
    if lm_per_wg > 0:
        limits.append(device.local_mem_per_cu / lm_per_wg)
    active = int(min(limits))
    if active < 1:
        raise OccupancyError(
            f"kernel {spec.name!r} cannot fit a single work-group on a CU "
            f"(pm/wg={pm_per_wg}B, lm/wg={lm_per_wg}B)"
        )
    return active


def check_segment_feasible(
    launches: Sequence[KernelLaunch], device: DeviceSpec
) -> bool:
    """Whether a set of concurrent launches satisfies Eq. 2.

    ``wg_Ki`` in Eq. 2 is the number of work-groups the launch wants
    resident at once; we use each launch's configured work-group count,
    which is how GPL controls resource allocation (Section 3.5).
    """
    pm_total = 0.0
    lm_total = 0.0
    wg_total = 0
    for launch in launches:
        spec = launch.spec
        pm_total += spec.pm_per_workitem * spec.workgroup_size * launch.workgroups
        lm_total += spec.lm_per_workitem * spec.workgroup_size * launch.workgroups
        wg_total += launch.workgroups
    return (
        pm_total <= device.private_mem_per_cu * device.num_cus
        and lm_total <= device.local_mem_per_cu * device.num_cus
        and wg_total <= device.max_wg_per_cu * device.num_cus
    )


@dataclass(frozen=True)
class OccupancyShare:
    """Resolved concurrency for one kernel within a segment.

    ``active_workgroups`` is the number of the kernel's work-groups that may
    execute simultaneously (``a_wg_Ki * a_CU_Ki`` in the paper's notation);
    ``active_cus`` is the share of CUs serving it.
    """

    active_workgroups: int
    active_cus: float


def allocate_segment_occupancy(
    launches: Sequence[KernelLaunch], device: DeviceSpec
) -> Dict[str, OccupancyShare]:
    """Split device capacity among the kernels of one segment.

    CUs are shared proportionally to each launch's requested work-group
    count (the GPL resource-allocation knob); each kernel's simultaneous
    work-groups are then capped by its own per-CU occupancy on its CU share
    and by its requested work-group count.  Keys of the returned dict are
    launch display names, which the pipeline simulator uses as stage ids.
    """
    if not launches:
        return {}
    names = [launch.display_name for launch in launches]
    if len(set(names)) != len(names):
        raise OccupancyError(f"duplicate launch labels in segment: {names}")
    total_wg = sum(launch.workgroups for launch in launches)
    shares: Dict[str, OccupancyShare] = {}
    for launch in launches:
        cu_share = device.num_cus * launch.workgroups / total_wg
        per_cu = max_active_wg_per_cu(launch.spec, device)
        active = max(1, min(launch.workgroups, int(per_cu * cu_share)))
        shares[launch.display_name] = OccupancyShare(
            active_workgroups=active, active_cus=cu_share
        )
    return shares


def scheduling_contention(requested_workgroups: int, fitted_workgroups: int) -> float:
    """Service-time inflation from oversubscribed work-group requests.

    When a segment asks for more resident work-groups than Eq. 2 allows,
    the hardware scheduler context-switches among them; throughput decays
    logarithmically in the oversubscription ratio.  This is what makes
    over-sized settings (S_5..S_7 in Fig 15) lose to the balanced one.
    """
    import math

    if fitted_workgroups <= 0 or requested_workgroups <= fitted_workgroups:
        return 1.0
    ratio = requested_workgroups / fitted_workgroups
    return 1.0 + 0.12 * math.log2(ratio)


def exclusive_occupancy(
    launch: KernelLaunch, device: DeviceSpec
) -> OccupancyShare:
    """Occupancy when a kernel runs alone (the KBE execution mode)."""
    per_cu = max_active_wg_per_cu(launch.spec, device)
    active = max(1, min(launch.workgroups, per_cu * device.num_cus))
    return OccupancyShare(
        active_workgroups=active, active_cus=float(device.num_cus)
    )
