"""Global-memory access cost model.

Implements the memory half of the paper's per-kernel cost (Eq. 5)::

    m_Ki = m_inst * (1 - cr) * mem_l + m_inst * cr * c_l

with one refinement the event simulator needs: a wavefront's memory
transactions are coalesced and pipelined, so the *effective* latency per
instruction is divided by the device's memory parallelism.  Without this
division the absolute magnitudes would be absurd (GPUs hide latency with
thousands of in-flight loads); with it, compute-bound and memory-bound
kernels land at realistic utilization mixes, which Figs 5/19/28 depend on.
"""

from __future__ import annotations

from dataclasses import dataclass

from .cache import CacheModel
from .device import DeviceSpec

__all__ = ["MemoryModel"]


@dataclass(frozen=True)
class MemoryModel:
    """Cost model for global-memory transactions of one device."""

    device: DeviceSpec
    cache: CacheModel

    @classmethod
    def for_device(cls, device: DeviceSpec) -> "MemoryModel":
        return cls(device=device, cache=CacheModel(device.cache_bytes))

    def access_cycles(self, accesses: float, hit_ratio: float) -> float:
        """Cycles to complete ``accesses`` transactions at ``hit_ratio``.

        This is Eq. 5 with the parallelism divisor applied.
        """
        hit_ratio = min(1.0, max(0.0, hit_ratio))
        raw = accesses * (
            (1.0 - hit_ratio) * self.device.global_latency
            + hit_ratio * self.device.cache_latency
        )
        return raw / self.device.memory_parallelism

    def scan_hit_ratio(
        self, working_set_bytes: float, stride_bytes: float = 8.0
    ) -> float:
        """Hit ratio for scanning a working set of the given size.

        Tiles that fit the data cache are re-read cheaply across the kernels
        of a segment; over-large tiles thrash (Fig 12's right slope) but a
        sequential scan still enjoys spatial locality within cache lines,
        so the hit ratio never falls below the streaming bound.
        """
        return max(
            self.cache.hit_ratio(working_set_bytes),
            self.cache.streaming_hit_ratio(stride_bytes),
        )

    def materialization_cycles(self, bytes_written: float) -> float:
        """Cycles to write an intermediate result to global memory.

        Writes stream straight to memory (write-allocate suppressed for
        streaming stores), so they pay global latency per transaction of
        one cache line.
        """
        transactions = bytes_written / 64.0
        return transactions * self.device.global_latency / self.device.memory_parallelism

    def reload_cycles(self, bytes_read: float, working_set_bytes: float) -> float:
        """Cycles for the next kernel to read back a materialized result.

        The "memory ping-pong" of KBE (Section 2.2, Observation 1): if the
        intermediate fits in cache it may still be resident; otherwise it
        comes back at global latency.
        """
        hit = self.cache.hit_ratio(working_set_bytes)
        transactions = bytes_read / 64.0
        return self.access_cycles(transactions, hit)
