"""The kernel-based execution (KBE) baseline.

This is the conventional GPU query co-processing model the paper compares
against (He et al. [15, 16], OmniDB [40]): every relational operator
expands into its multi-kernel form (selection = map + prefix sum +
scatter, probe = count + prefix sum + scatter, aggregation = materialize +
prefix scan), each kernel runs on the whole device *one at a time*, and
every kernel's output is explicitly materialized in global memory — the
"memory ping-pong" of Section 2.2.
"""

from __future__ import annotations

from typing import Optional

from ..gpu import DataLocation, KernelLaunch, Simulator
from ..plans import ExecutionContext, KernelTemplate, Pipeline
from ..plans.physical import BuildSink
from ..plans.runtime import Batch, batch_rows
from ..core.base import EngineBase, workgroups_for

__all__ = ["KBEEngine"]


class KBEEngine(EngineBase):
    """One kernel at a time, full materialization between kernels."""

    name = "KBE"

    def _run_pipeline(
        self,
        pipeline: Pipeline,
        simulator: Simulator,
        context: ExecutionContext,
    ) -> None:
        batch = self._source_batch(pipeline, context)
        pipeline.sink.start(context)

        # Only the very first kernel streams the pipeline's source; every
        # later kernel reloads a freshly materialized intermediate — the
        # memory ping-pong of Section 2.2.
        reads_intermediate = pipeline.source_table is None

        for op in pipeline.ops:
            rows_in = batch_rows(batch)
            batch = op.apply(batch, context)
            rows_out = batch_rows(batch)
            actual = self._actual_selectivity(rows_in, rows_out)
            for template in op.kbe_kernels():
                self._run_kernel(
                    simulator, context, template, rows_in, actual,
                    reads_intermediate,
                )
                reads_intermediate = True

        rows_in = batch_rows(batch)
        pipeline.sink.consume(batch, context)
        for template in pipeline.sink.kbe_kernels():
            self._run_kernel(
                simulator, context, template, rows_in, None,
                reads_intermediate,
            )
            reads_intermediate = True
        output = pipeline.sink.finalize(context)
        if isinstance(pipeline.sink, BuildSink):
            # The hash table itself is a materialized intermediate; its
            # write cost is inside the build kernel's accounting already.
            pass
        self._register_output(pipeline, context, output)

    def _run_kernel(
        self,
        simulator: Simulator,
        context: ExecutionContext,
        template: KernelTemplate,
        rows_in: int,
        actual_selectivity: Optional[float],
        input_is_intermediate: bool = False,
    ) -> None:
        """Launch one KBE kernel exclusively, with launch overhead.

        Kernels whose template selectivity is 1.0 (flag maps, prefix sums)
        keep it; data-reducing kernels use the measured selectivity when
        one is available.
        """
        selectivity = template.est_selectivity
        if actual_selectivity is not None and template.est_selectivity != 1.0:
            selectivity = actual_selectivity

        aux_ws = self._aux_working_set(context, template)

        launch = KernelLaunch(
            spec=template.spec,
            tuples=rows_in,
            workgroups=workgroups_for(rows_in),
            in_bytes_per_tuple=template.in_width,
            out_bytes_per_tuple=template.out_width,
            selectivity=selectivity,
            input_location=DataLocation.GLOBAL,
            output_location=DataLocation.GLOBAL,
        )
        simulator.launch_overhead()
        simulator.run_exclusive(
            launch,
            aux_reads_per_tuple=template.aux_reads_per_tuple,
            aux_working_set_bytes=aux_ws,
            input_is_intermediate=input_is_intermediate,
        )
