"""Kernel-based execution: the conventional baseline the paper improves on."""

from .engine import KBEEngine

__all__ = ["KBEEngine"]
