"""Deterministic fault injection for the simulated GPU engines.

Production-scale GPU query platforms treat out-of-memory, stalled data
movement, and kernel failures as first-class runtime events with recovery
paths.  This module lets tests (and the CLI) *schedule* such events at
named points of a run — a segment id, a kernel name, a cycle window — so
the resilience layer (:mod:`repro.core.resilience`) can be exercised
reproducibly:

* a :class:`FaultPlan` is an immutable, fully materialized schedule of
  :class:`FaultSpec` entries.  Seeded plans (:meth:`FaultPlan.from_seed`)
  draw their schedule eagerly at construction time, so there is **no RNG
  in the hot path** and the same seed always produces the same schedule;
* a :class:`FaultInjector` arms a plan and is consulted by the simulator
  and the engines at well-defined hook points.  Every firing is recorded
  as a :class:`FiredFault`, and each spec fires at most ``times`` times —
  which is what makes a fault *absorbable* by a bounded retry.

Matching is by fnmatch-style patterns (precompiled to regexes, since the
match runs on the simulator's per-event hook path) on the segment
(pipeline) id and the kernel display name, plus an optional
``[after, before)`` cycle window for in-flight faults.
"""

from __future__ import annotations

import math
import random
import re
from dataclasses import dataclass, field, replace
from enum import Enum
from fnmatch import translate as _fnmatch_translate
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

from .errors import (
    CalibrationError,
    DeviceMemoryError,
    KernelFaultError,
    ReproError,
)

__all__ = [
    "FaultKind",
    "FaultSpec",
    "FaultPlan",
    "FiredFault",
    "FaultInjector",
    "parse_fault_plan",
]


class FaultKind(str, Enum):
    """The simulated failure modes the engines can be subjected to."""

    KERNEL_ABORT = "abort"
    CHANNEL_STALL = "stall"
    CHANNEL_OVERFLOW = "overflow"
    DEVICE_OOM = "oom"
    MISSING_CALIBRATION = "calibration"
    DEVICE_LOST = "device_down"


_KINDS = {kind.value: kind for kind in FaultKind}

#: The kinds seeded plans draw from.  Pinned to the original five engine
#: faults (in enum-declaration order) so every pre-existing seeded
#: schedule — golden tests, SOAK/BENCH baselines — is byte-stable as new
#: kinds are added.  ``device_down`` is a whole-slot event consumed by the
#: shard layer, not the engines, and only enters a plan explicitly.
_SEEDED_KINDS = (
    FaultKind.KERNEL_ABORT,
    FaultKind.CHANNEL_STALL,
    FaultKind.CHANNEL_OVERFLOW,
    FaultKind.DEVICE_OOM,
    FaultKind.MISSING_CALIBRATION,
)


@lru_cache(maxsize=512)
def _site_matcher(pattern: str):
    """Compiled matcher for one fnmatch site pattern.

    ``FaultSpec.matches`` sits on the simulator's per-event hook path, so
    the fnmatch pattern is translated and compiled once per distinct
    pattern (warmed at spec construction) instead of on every call.
    Matching is case-sensitive, as segment ids and kernel names are.
    """
    return re.compile(_fnmatch_translate(pattern)).match


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: what, where, when, and how often.

    ``segment`` and ``kernel`` are fnmatch patterns against the pipeline id
    and the kernel display name; ``after_cycle``/``before_cycle`` bound the
    virtual-cycle window in which in-flight faults (kernel aborts) may
    fire; ``times`` bounds total firings, after which the spec is spent.
    """

    kind: FaultKind
    segment: str = "*"
    kernel: str = "*"
    after_cycle: float = 0.0
    before_cycle: float = math.inf
    times: int = 1

    def __post_init__(self) -> None:
        if self.times < 1:
            raise ReproError("fault spec must fire at least once")
        if self.after_cycle < 0 or self.before_cycle <= self.after_cycle:
            raise ReproError(
                f"bad fault cycle window [{self.after_cycle}, "
                f"{self.before_cycle})"
            )
        # Pay the regex compilation here, not on the injector hot path.
        _site_matcher(self.segment)
        _site_matcher(self.kernel)

    def matches(self, segment: str, kernel: str, cycle: float) -> bool:
        return (
            self.after_cycle <= cycle < self.before_cycle
            and _site_matcher(self.segment)(segment) is not None
            and _site_matcher(self.kernel)(kernel) is not None
        )

    def describe(self) -> str:
        window = ""
        if self.after_cycle > 0 or math.isfinite(self.before_cycle):
            hi = "inf" if math.isinf(self.before_cycle) else f"{self.before_cycle:.0f}"
            window = f",after={self.after_cycle:.0f},before={hi}"
        times = f",times={self.times}" if self.times != 1 else ""
        return f"{self.kind.value}@{self.segment}:{self.kernel}{window}{times}"


@dataclass(frozen=True)
class FiredFault:
    """One recorded firing of a scheduled fault."""

    spec_index: int
    kind: FaultKind
    segment: str
    kernel: str
    cycle: float


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, deterministic schedule of faults.

    The plan is the unit of reproducibility: two injectors armed with
    equal plans, driven by the (deterministic) simulator, fire the exact
    same faults at the exact same points.
    """

    faults: Tuple[FaultSpec, ...] = ()
    seed: Optional[int] = None

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse a CLI fault spec (see :func:`parse_fault_plan`)."""
        return parse_fault_plan(text)

    @classmethod
    def from_seed(
        cls,
        seed: int,
        count: int = 3,
        kinds: Optional[Sequence[FaultKind]] = None,
        segments: Sequence[str] = ("*",),
        kernels: Sequence[str] = ("*",),
        max_cycle: float = 1e9,
    ) -> "FaultPlan":
        """A seeded random plan, drawn eagerly — same seed, same schedule.

        All randomness happens here, at construction; the resulting plan
        is a plain tuple of concrete :class:`FaultSpec` entries and the
        injector never touches an RNG.
        """
        rng = random.Random(seed)
        pool = tuple(kinds) if kinds else _SEEDED_KINDS
        specs: List[FaultSpec] = []
        for _ in range(max(0, count)):
            kind = pool[rng.randrange(len(pool))]
            spec = FaultSpec(
                kind=kind,
                segment=segments[rng.randrange(len(segments))],
                kernel=kernels[rng.randrange(len(kernels))],
            )
            if kind is FaultKind.KERNEL_ABORT and rng.random() < 0.5:
                lo = float(rng.randrange(0, int(max_cycle // 2)))
                spec = replace(spec, after_cycle=lo)
            specs.append(spec)
        return cls(faults=tuple(specs), seed=seed)

    def describe(self) -> str:
        head = f"fault plan (seed={self.seed})" if self.seed is not None \
            else "fault plan"
        if not self.faults:
            return f"{head}: empty"
        return f"{head}: " + "; ".join(s.describe() for s in self.faults)


def parse_fault_plan(text: str) -> FaultPlan:
    """Parse ``--inject-faults`` syntax into a :class:`FaultPlan`.

    Grammar (items separated by ``;``)::

        item   := kind ['@' segment [':' kernel]] (',' key '=' value)*
        kind   := abort | stall | overflow | oom | calibration | device_down
        key    := times | after | before
        item   := 'random' ':' seed [':' count]     (seeded plan)

    Examples::

        oom                         one OOM on any segment
        stall@pipe0:probe*          stall the probe kernels of pipe0
        abort@*:*,times=2,after=1000
        random:42:3                 three seeded faults
    """
    specs: List[FaultSpec] = []
    seed: Optional[int] = None
    for raw in text.split(";"):
        item = raw.strip()
        if not item:
            continue
        if item.startswith("random:"):
            parts = item.split(":")
            try:
                seed = int(parts[1])
                count = int(parts[2]) if len(parts) > 2 else 3
            except (IndexError, ValueError):
                raise ReproError(
                    f"bad seeded fault item {item!r}; expected "
                    "random:SEED[:COUNT]"
                ) from None
            specs.extend(FaultPlan.from_seed(seed, count=count).faults)
            continue
        head, _, options = item.partition(",")
        kind_text, _, site = head.partition("@")
        kind = _KINDS.get(kind_text.strip())
        if kind is None:
            raise ReproError(
                f"unknown fault kind {kind_text!r}; choose one of "
                f"{sorted(_KINDS)}"
            )
        segment, _, kernel = site.partition(":")
        kwargs: Dict[str, float] = {}
        for option in options.split(","):
            option = option.strip()
            if not option:
                continue
            key, _, value = option.partition("=")
            try:
                if key == "times":
                    kwargs["times"] = int(value)
                elif key == "after":
                    kwargs["after_cycle"] = float(value)
                elif key == "before":
                    kwargs["before_cycle"] = float(value)
                else:
                    raise ValueError(key)
            except ValueError:
                raise ReproError(
                    f"bad fault option {option!r} in {item!r}"
                ) from None
        specs.append(
            FaultSpec(
                kind=kind,
                segment=segment.strip() or "*",
                kernel=kernel.strip() or "*",
                **kwargs,
            )
        )
    return FaultPlan(faults=tuple(specs), seed=seed)


@dataclass
class FaultInjector:
    """Armed fault plan consulted by the simulator and the engines.

    Each hook either *raises* the typed error for the fault (OOM, kernel
    abort, missing calibration) or *answers* whether a behavioural fault
    applies (channel stall / overflow), leaving the mechanics to the
    simulator.  Specs are consumed in plan order; a spent spec never fires
    again, which is what lets a bounded retry absorb a fault.
    """

    plan: FaultPlan
    fired: List[FiredFault] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._remaining = [spec.times for spec in self.plan.faults]

    # -- core matching --------------------------------------------------

    def _take(
        self, kind: FaultKind, segment: str, kernel: str, cycle: float
    ) -> Optional[FaultSpec]:
        for index, spec in enumerate(self.plan.faults):
            if spec.kind is not kind or self._remaining[index] <= 0:
                continue
            if not spec.matches(segment, kernel, cycle):
                continue
            self._remaining[index] -= 1
            self.fired.append(
                FiredFault(
                    spec_index=index,
                    kind=kind,
                    segment=segment,
                    kernel=kernel,
                    cycle=cycle,
                )
            )
            return spec
        return None

    # -- raising hooks ---------------------------------------------------

    def on_segment_launch(
        self, segment: str, budget_bytes: float = 0.0
    ) -> None:
        """Entry of a segment: injected device-memory exhaustion."""
        if self._take(FaultKind.DEVICE_OOM, segment, "*", 0.0) is not None:
            raise DeviceMemoryError(
                f"injected device memory exhaustion launching segment "
                f"{segment!r}",
                segment=segment,
                budget_bytes=budget_bytes,
                injected=True,
            )

    def on_kernel_complete(
        self, segment: str, kernel: str, cycle: float
    ) -> None:
        """A kernel (work-group unit) retired: injected kernel abort."""
        if self._take(FaultKind.KERNEL_ABORT, segment, kernel, cycle) is not None:
            raise KernelFaultError(
                f"injected abort of kernel {kernel!r} in segment "
                f"{segment!r} at cycle {cycle:.0f}",
                segment=segment,
                kernel=kernel,
                cycle=cycle,
                injected=True,
            )

    def on_calibration_lookup(self, segment: str = "*") -> None:
        """Config re-derivation consulted Γ: injected missing entry."""
        if self._take(
            FaultKind.MISSING_CALIBRATION, segment, "*", 0.0
        ) is not None:
            raise CalibrationError(
                "injected missing calibration entry while re-deriving the "
                f"configuration for segment {segment!r}"
            )

    def takes_device(self, device: str) -> bool:
        """Whether a ``device_down`` fault claims this whole slot.

        Consulted by the shard layer (gather and relocation), never by
        the engines: the ``segment`` pattern of a ``device_down`` spec
        matches the slot *name* (``dev1``), and a firing means every
        shard outcome on that slot for the current query is discarded.
        """
        return self._take(FaultKind.DEVICE_LOST, device, "*", 0.0) is not None

    # -- behavioural hooks (simulator applies the mechanics) -------------

    def stalls_stage(self, segment: str, kernel: str) -> bool:
        """Whether this stage's consumer side should wedge (never start)."""
        return self._take(
            FaultKind.CHANNEL_STALL, segment, kernel, 0.0
        ) is not None

    def overflows_edge(self, segment: str, kernel: str) -> bool:
        """Whether this producer's channel edge should refuse its burst."""
        return self._take(
            FaultKind.CHANNEL_OVERFLOW, segment, kernel, 0.0
        ) is not None

    # -- reporting -------------------------------------------------------

    def fired_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.fired:
            counts[event.kind.value] = counts.get(event.kind.value, 0) + 1
        return counts

    @property
    def exhausted(self) -> bool:
        """Every scheduled fault has fired its full ``times`` budget."""
        return all(remaining == 0 for remaining in self._remaining)

    @property
    def scheduled_total(self) -> int:
        """Total firings the plan scheduled (the sum of ``times``)."""
        return sum(spec.times for spec in self.plan.faults)

    def unfired_specs(self) -> List[str]:
        """Human-readable specs that still hold unspent firing budget.

        Chaos harnesses assert this is empty to prove every scheduled
        fault actually exercised the code path it targeted (a fault whose
        site pattern never matched fires zero times and shows up here).
        """
        return [
            f"{spec.describe()} ({remaining} of {spec.times} unfired)"
            for spec, remaining in zip(self.plan.faults, self._remaining)
            if remaining > 0
        ]
