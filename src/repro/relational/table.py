"""Columnar tables backed by numpy arrays.

A :class:`Table` pairs a :class:`~repro.relational.schema.TableSchema` with
one numpy array per column.  Tables are the unit of data exchanged between
the workload generator, the engines, and the reference executor.  All
operations return *new* tables; the underlying arrays may be shared (numpy
views) because engines never mutate column data in place.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import SchemaError
from .schema import ColumnDef, TableSchema
from .types import DataType

__all__ = ["Table"]


class Table:
    """An immutable-by-convention columnar table."""

    def __init__(self, schema: TableSchema, columns: Mapping[str, np.ndarray]):
        lengths = set()
        data: Dict[str, np.ndarray] = {}
        for column in schema:
            if column.name not in columns:
                raise SchemaError(f"missing data for column {column.name!r}")
            array = np.asarray(columns[column.name], dtype=column.dtype.numpy_dtype)
            if array.ndim != 1:
                raise SchemaError(f"column {column.name!r} must be 1-D")
            data[column.name] = array
            lengths.add(array.shape[0])
        extra = set(columns) - set(schema.names)
        if extra:
            raise SchemaError(f"data for unknown columns: {sorted(extra)}")
        if len(lengths) > 1:
            raise SchemaError(f"ragged columns: lengths {sorted(lengths)}")
        self._schema = schema
        self._data = data
        self._num_rows = lengths.pop() if lengths else 0

    # -- construction ------------------------------------------------------

    @classmethod
    def empty(cls, schema: TableSchema) -> "Table":
        """A zero-row table with the given schema."""
        return cls(
            schema,
            {c.name: np.empty(0, dtype=c.dtype.numpy_dtype) for c in schema},
        )

    @classmethod
    def from_rows(
        cls, schema: TableSchema, rows: Iterable[Sequence]
    ) -> "Table":
        """Build a table from an iterable of row tuples (testing helper)."""
        transposed = list(zip(*rows))  # one pass over the row iterable
        columns = {}
        for position, column in enumerate(schema):
            values = transposed[position] if transposed else ()
            columns[column.name] = np.asarray(
                values, dtype=column.dtype.numpy_dtype
            )
        return cls(schema, columns)

    # -- basic accessors ---------------------------------------------------

    @property
    def schema(self) -> TableSchema:
        return self._schema

    @property
    def num_rows(self) -> int:
        return self._num_rows

    def __len__(self) -> int:
        return self._num_rows

    @property
    def nbytes(self) -> int:
        """Total payload bytes; the simulator's unit of data volume."""
        return self._num_rows * self._schema.row_width

    def column(self, name: str) -> np.ndarray:
        """The numpy array backing column ``name``."""
        try:
            return self._data[name]
        except KeyError:
            raise SchemaError(f"no column named {name!r}") from None

    def __getitem__(self, name: str) -> np.ndarray:
        return self.column(name)

    @property
    def columns(self) -> Dict[str, np.ndarray]:
        """Name-to-array mapping (shared, do not mutate)."""
        return dict(self._data)

    # -- relational helpers ------------------------------------------------

    def project(self, names: Sequence[str]) -> "Table":
        """Keep only ``names``, in the given order."""
        schema = self._schema.project(names)
        return Table(schema, {name: self._data[name] for name in names})

    def rename(self, mapping: Mapping[str, str]) -> "Table":
        """Rename columns per ``mapping`` (old name -> new name)."""
        schema = self._schema.rename(dict(mapping))
        data = {
            mapping.get(name, name): array for name, array in self._data.items()
        }
        return Table(schema, data)

    def filter(self, mask: np.ndarray) -> "Table":
        """Rows where boolean ``mask`` is true."""
        if mask.dtype != np.bool_ or mask.shape != (self._num_rows,):
            raise SchemaError("filter mask must be boolean of table length")
        return Table(
            self._schema,
            {name: array[mask] for name, array in self._data.items()},
        )

    def take(self, indices: np.ndarray) -> "Table":
        """Rows at ``indices`` (gather)."""
        return Table(
            self._schema,
            {name: array[indices] for name, array in self._data.items()},
        )

    def slice(self, start: int, stop: int) -> "Table":
        """Rows in ``[start, stop)`` as numpy views (zero copy)."""
        return Table(
            self._schema,
            {name: array[start:stop] for name, array in self._data.items()},
        )

    def with_column(self, column: ColumnDef, values: np.ndarray) -> "Table":
        """A new table with one extra column appended."""
        schema = TableSchema(self._schema.columns + (column,))
        data = dict(self._data)
        data[column.name] = values
        return Table(schema, data)

    def concat_rows(self, other: "Table") -> "Table":
        """Vertical concatenation; schemas must match exactly."""
        if other.schema.names != self._schema.names:
            raise SchemaError("concat_rows requires identical schemas")
        data = {
            name: np.concatenate([self._data[name], other.column(name)])
            for name in self._schema.names
        }
        return Table(self._schema, data)

    @classmethod
    def concat_all(cls, tables: Sequence["Table"]) -> "Table":
        """Concatenate many same-schema tables efficiently."""
        if not tables:
            raise SchemaError("concat_all requires at least one table")
        schema = tables[0].schema
        for table in tables[1:]:
            if table.schema.names != schema.names:
                raise SchemaError("concat_all requires identical schemas")
        data = {
            name: np.concatenate([table.column(name) for table in tables])
            for name in schema.names
        }
        return cls(schema, data)

    def sort_by(
        self, keys: Sequence[str], descending: Sequence[bool] = ()
    ) -> "Table":
        """Stable multi-key sort.  ``descending[i]`` flips key ``keys[i]``."""
        if not keys:
            return self
        desc = list(descending) + [False] * (len(keys) - len(descending))
        order = np.arange(self._num_rows)
        # numpy lexsort sorts by the *last* key first; apply keys in reverse.
        for key, is_desc in reversed(list(zip(keys, desc))):
            values = self._data[key][order]
            perm = np.argsort(values, kind="stable")
            if is_desc:
                perm = perm[::-1]
                # keep stability under reversal: reverse equal runs back
                rev_values = values[perm]
                boundaries = np.flatnonzero(rev_values[1:] != rev_values[:-1])
                starts = np.concatenate([[0], boundaries + 1])
                ends = np.concatenate([boundaries + 1, [len(perm)]])
                fixed = np.empty_like(perm)
                for s, e in zip(starts, ends):
                    fixed[s:e] = perm[s:e][::-1]
                perm = fixed
            order = order[perm]
        return self.take(order)

    def to_rows(self) -> List[Tuple]:
        """Materialize as a list of row tuples (testing / presentation)."""
        arrays = [self._data[name] for name in self._schema.names]
        return [tuple(values) for values in zip(*arrays)] if arrays else []

    def decoded_rows(self) -> List[Tuple]:
        """Rows with DICT codes decoded back to strings."""
        rows = []
        columns = list(self._schema)
        raw = self.to_rows()
        for row in raw:
            decoded = []
            for column, value in zip(columns, row):
                if column.dtype is DataType.DICT and column.dictionary:
                    decoded.append(column.decode(int(value)))
                else:
                    decoded.append(value)
            rows.append(tuple(decoded))
        return rows

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Table({self._num_rows} rows, "
            f"columns={list(self._schema.names)!r})"
        )
