"""Column data types for the columnar relational substrate.

The engines in this package are columnar and numpy-backed.  Each logical
column type maps to one numpy dtype and a fixed byte width; byte widths feed
the GPU simulator's memory model (tile sizes, channel packet counts, and
materialized-intermediate accounting are all expressed in bytes).

Dates are stored as ``int32`` days since 1970-01-01, mirroring how columnar
engines (including the OmniDB code base GPL builds on) store dates as
integers for predicate evaluation on the GPU.  Strings are dictionary-encoded
at load time (see :mod:`repro.tpch.dbgen`), so string columns are ``int32``
codes plus a Python-side dictionary; this mirrors Ocelot's restriction to
4-byte values that the paper discusses in Section 5.1.
"""

from __future__ import annotations

import datetime as _dt
import enum

import numpy as np

__all__ = ["DataType", "date_to_days", "days_to_date", "EPOCH"]

EPOCH = _dt.date(1970, 1, 1)


class DataType(enum.Enum):
    """Logical column types supported by the engines."""

    INT32 = "int32"
    INT64 = "int64"
    FLOAT32 = "float32"
    FLOAT64 = "float64"
    DATE = "date"
    DICT = "dict"  # dictionary-encoded string, stored as int32 codes

    @property
    def numpy_dtype(self) -> np.dtype:
        """The numpy dtype used for the physical column."""
        physical = {
            DataType.INT32: np.int32,
            DataType.INT64: np.int64,
            DataType.FLOAT32: np.float32,
            DataType.FLOAT64: np.float64,
            DataType.DATE: np.int32,
            DataType.DICT: np.int32,
        }
        return np.dtype(physical[self])

    @property
    def width(self) -> int:
        """Byte width of one value; drives all size accounting."""
        return self.numpy_dtype.itemsize

    @property
    def is_numeric(self) -> bool:
        """Whether arithmetic (not just comparison) is meaningful."""
        return self in (
            DataType.INT32,
            DataType.INT64,
            DataType.FLOAT32,
            DataType.FLOAT64,
        )


def date_to_days(value: "str | _dt.date") -> int:
    """Convert an ISO date string or :class:`datetime.date` to epoch days.

    >>> date_to_days("1970-01-02")
    1
    """
    if isinstance(value, str):
        value = _dt.date.fromisoformat(value)
    return (value - EPOCH).days


def days_to_date(days: int) -> _dt.date:
    """Inverse of :func:`date_to_days`."""
    return EPOCH + _dt.timedelta(days=int(days))
