"""Expression trees evaluated over columnar data.

Expressions serve three consumers:

* engines evaluate them vectorized over numpy columns (``evaluate``);
* the physical planner derives per-tuple *compute instruction counts* from
  them (``instruction_count``), which feed the GPU kernel cost model
  (paper Eq. 4 uses ``c_inst_Ki`` from program analysis);
* the statistics module inspects referenced columns (``columns``).

The grammar covers everything TPC-H Q5/Q7/Q8/Q9/Q14 need: column
references, literals, arithmetic, comparisons, boolean connectives,
``BETWEEN``-style range predicates, ``IN``-lists, and ``CASE WHEN``.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Mapping, Sequence, Tuple, Union

import numpy as np

from ..errors import ExpressionError

__all__ = [
    "Expression",
    "Col",
    "Lit",
    "Arith",
    "Compare",
    "And",
    "Or",
    "Not",
    "InList",
    "CaseWhen",
    "YearOf",
    "col",
    "lit",
]

ArrayMap = Mapping[str, np.ndarray]

_ARITH_OPS: Dict[str, Callable] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
}

_COMPARE_OPS: Dict[str, Callable] = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

# Rough per-tuple instruction weights used by program analysis.  Division is
# micro-coded on GCN-class hardware and substantially more expensive than
# add/multiply; comparisons and boolean ops are single VALU instructions.
_ARITH_COST = {"+": 4, "-": 4, "*": 4, "/": 32}
_COMPARE_COST = 4
_BOOL_COST = 2
_SELECT_COST = 8  # CASE WHEN lowers to a compare + conditional move


class Expression:
    """Base class for all expression nodes."""

    def evaluate(self, data: ArrayMap) -> np.ndarray:
        """Vectorized evaluation against a name -> array mapping."""
        raise NotImplementedError

    def columns(self) -> FrozenSet[str]:
        """Names of all columns referenced anywhere in the tree."""
        raise NotImplementedError

    def instruction_count(self) -> int:
        """Approximate per-tuple VALU instructions to evaluate this tree."""
        raise NotImplementedError

    def memory_reads(self) -> int:
        """Distinct column loads needed per tuple (memory instructions)."""
        return len(self.columns())

    # -- operator sugar ------------------------------------------------

    def __add__(self, other: "ExpressionLike") -> "Arith":
        return Arith("+", self, _wrap(other))

    def __sub__(self, other: "ExpressionLike") -> "Arith":
        return Arith("-", self, _wrap(other))

    def __mul__(self, other: "ExpressionLike") -> "Arith":
        return Arith("*", self, _wrap(other))

    def __truediv__(self, other: "ExpressionLike") -> "Arith":
        return Arith("/", self, _wrap(other))

    def __radd__(self, other: "ExpressionLike") -> "Arith":
        return Arith("+", _wrap(other), self)

    def __rsub__(self, other: "ExpressionLike") -> "Arith":
        return Arith("-", _wrap(other), self)

    def __rmul__(self, other: "ExpressionLike") -> "Arith":
        return Arith("*", _wrap(other), self)

    def eq(self, other: "ExpressionLike") -> "Compare":
        return Compare("==", self, _wrap(other))

    def ne(self, other: "ExpressionLike") -> "Compare":
        return Compare("!=", self, _wrap(other))

    def lt(self, other: "ExpressionLike") -> "Compare":
        return Compare("<", self, _wrap(other))

    def le(self, other: "ExpressionLike") -> "Compare":
        return Compare("<=", self, _wrap(other))

    def gt(self, other: "ExpressionLike") -> "Compare":
        return Compare(">", self, _wrap(other))

    def ge(self, other: "ExpressionLike") -> "Compare":
        return Compare(">=", self, _wrap(other))

    def between(self, low: "ExpressionLike", high: "ExpressionLike") -> "And":
        """Inclusive range predicate ``low <= self <= high``."""
        return And(self.ge(low), self.le(high))

    def isin(self, values: Sequence) -> "InList":
        return InList(self, tuple(values))

    def __and__(self, other: "Expression") -> "And":
        return And(self, other)

    def __or__(self, other: "Expression") -> "Or":
        return Or(self, other)

    def __invert__(self) -> "Not":
        return Not(self)


ExpressionLike = Union[Expression, int, float]


def _wrap(value: ExpressionLike) -> Expression:
    if isinstance(value, Expression):
        return value
    if isinstance(value, (int, float, np.integer, np.floating)):
        return Lit(value)
    raise ExpressionError(f"cannot use {value!r} as an expression")


@dataclass(frozen=True)
class Col(Expression):
    """Reference to a column by name."""

    name: str

    def evaluate(self, data: ArrayMap) -> np.ndarray:
        try:
            return data[self.name]
        except KeyError:
            raise ExpressionError(f"column {self.name!r} not in input") from None

    def columns(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def instruction_count(self) -> int:
        return 0


@dataclass(frozen=True)
class Lit(Expression):
    """A scalar literal."""

    value: Union[int, float]

    def evaluate(self, data: ArrayMap) -> np.ndarray:
        return np.asarray(self.value)

    def columns(self) -> FrozenSet[str]:
        return frozenset()

    def instruction_count(self) -> int:
        return 0


@dataclass(frozen=True)
class Arith(Expression):
    """Binary arithmetic: ``+``, ``-``, ``*``, ``/``."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _ARITH_OPS:
            raise ExpressionError(f"unknown arithmetic operator {self.op!r}")

    def evaluate(self, data: ArrayMap) -> np.ndarray:
        left = self.left.evaluate(data)
        right = self.right.evaluate(data)
        if self.op == "/" and _division_needs_cast(left, right):
            left = np.asarray(left, dtype=np.float64)
        return _ARITH_OPS[self.op](left, right)

    def columns(self) -> FrozenSet[str]:
        return self.left.columns() | self.right.columns()

    def instruction_count(self) -> int:
        return (
            self.left.instruction_count()
            + self.right.instruction_count()
            + _ARITH_COST[self.op]
        )


def _division_needs_cast(left: np.ndarray, right: np.ndarray) -> bool:
    """Whether ``/`` must widen ``left`` to float64 to keep its contract.

    Division always produces float64 values.  ``np.true_divide`` on
    integer (or boolean) operands already computes in — and returns —
    float64, so casting first would only allocate a same-valued copy of
    the whole column.  Only an *inexact* narrower result type (e.g.
    float32 operands, where true_divide would stay float32) needs the
    explicit widening.
    """
    result = np.result_type(left, right)
    return result != np.float64 and np.issubdtype(result, np.inexact)


@dataclass(frozen=True)
class Compare(Expression):
    """Binary comparison producing a boolean mask."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _COMPARE_OPS:
            raise ExpressionError(f"unknown comparison operator {self.op!r}")

    def evaluate(self, data: ArrayMap) -> np.ndarray:
        return _COMPARE_OPS[self.op](
            self.left.evaluate(data), self.right.evaluate(data)
        )

    def columns(self) -> FrozenSet[str]:
        return self.left.columns() | self.right.columns()

    def instruction_count(self) -> int:
        return (
            self.left.instruction_count()
            + self.right.instruction_count()
            + _COMPARE_COST
        )


@dataclass(frozen=True)
class And(Expression):
    """Boolean conjunction."""

    left: Expression
    right: Expression

    def evaluate(self, data: ArrayMap) -> np.ndarray:
        return np.logical_and(
            self.left.evaluate(data), self.right.evaluate(data)
        )

    def columns(self) -> FrozenSet[str]:
        return self.left.columns() | self.right.columns()

    def instruction_count(self) -> int:
        return (
            self.left.instruction_count()
            + self.right.instruction_count()
            + _BOOL_COST
        )


@dataclass(frozen=True)
class Or(Expression):
    """Boolean disjunction."""

    left: Expression
    right: Expression

    def evaluate(self, data: ArrayMap) -> np.ndarray:
        return np.logical_or(
            self.left.evaluate(data), self.right.evaluate(data)
        )

    def columns(self) -> FrozenSet[str]:
        return self.left.columns() | self.right.columns()

    def instruction_count(self) -> int:
        return (
            self.left.instruction_count()
            + self.right.instruction_count()
            + _BOOL_COST
        )


@dataclass(frozen=True)
class Not(Expression):
    """Boolean negation."""

    operand: Expression

    def evaluate(self, data: ArrayMap) -> np.ndarray:
        return np.logical_not(self.operand.evaluate(data))

    def columns(self) -> FrozenSet[str]:
        return self.operand.columns()

    def instruction_count(self) -> int:
        return self.operand.instruction_count() + _BOOL_COST


@dataclass(frozen=True)
class InList(Expression):
    """Membership test against a small literal list."""

    operand: Expression
    values: Tuple

    def evaluate(self, data: ArrayMap) -> np.ndarray:
        operand = self.operand.evaluate(data)
        return np.isin(operand, np.asarray(self.values))

    def columns(self) -> FrozenSet[str]:
        return self.operand.columns()

    def instruction_count(self) -> int:
        return self.operand.instruction_count() + _COMPARE_COST * max(
            1, len(self.values)
        )


@dataclass(frozen=True)
class CaseWhen(Expression):
    """``CASE WHEN cond THEN a ELSE b END`` (Q8's market-share numerator)."""

    condition: Expression
    then: Expression
    otherwise: Expression

    def evaluate(self, data: ArrayMap) -> np.ndarray:
        condition = self.condition.evaluate(data)
        then = self.then.evaluate(data)
        otherwise = self.otherwise.evaluate(data)
        return np.where(condition, then, otherwise)

    def columns(self) -> FrozenSet[str]:
        return (
            self.condition.columns()
            | self.then.columns()
            | self.otherwise.columns()
        )

    def instruction_count(self) -> int:
        return (
            self.condition.instruction_count()
            + self.then.instruction_count()
            + self.otherwise.instruction_count()
            + _SELECT_COST
        )


@dataclass(frozen=True)
class YearOf(Expression):
    """Extract the calendar year from a DATE column (epoch days).

    Implements SQL's ``extract(year from ...)`` used by Q7/Q8/Q9.  The
    conversion is exact (numpy datetime64 calendar), not an approximation.
    """

    operand: Expression

    def evaluate(self, data: ArrayMap) -> np.ndarray:
        days = np.asarray(self.operand.evaluate(data), dtype=np.int64)
        years = days.astype("datetime64[D]").astype("datetime64[Y]")
        return years.astype(np.int64) + 1970

    def columns(self) -> FrozenSet[str]:
        return self.operand.columns()

    def instruction_count(self) -> int:
        # Division plus calendar correction; comparable to one division.
        return self.operand.instruction_count() + _ARITH_COST["/"]


def col(name: str) -> Col:
    """Shorthand constructor for a column reference."""
    return Col(name)


def lit(value: Union[int, float]) -> Lit:
    """Shorthand constructor for a literal."""
    return Lit(value)
