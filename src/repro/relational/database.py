"""The database: a catalog of named tables plus per-column statistics.

Statistics power the Selinger-style optimizer (paper Section 3.1) and the
cost model's data-reduction ratios ``lambda_Ki`` (paper Table 2 — the ratio
of intermediate data produced by a kernel to the tile size, "obtained from
the database query optimizer").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Mapping, Optional

import numpy as np

from ..errors import SchemaError
from .table import Table

__all__ = ["ColumnStats", "Database"]

#: Widest presence bitmap the exact distinct counter will allocate
#: (64 MiB of bools); wider integer ranges fall back to ``np.unique``.
_DISTINCT_BITMAP_LIMIT = 1 << 26


def _distinct_count(array: np.ndarray, minimum, maximum) -> int:
    """Exact distinct count, avoiding the ``np.unique`` sort/hash when a
    presence bitmap over the value range is cheaper (integer keys with
    bounded range — every catalogue fact/dimension key qualifies).
    """
    if np.issubdtype(array.dtype, np.integer) or array.dtype == np.bool_:
        span = int(maximum) - int(minimum) + 1
        if span <= max(65536, 4 * array.size) and span <= _DISTINCT_BITMAP_LIMIT:
            seen = np.zeros(span, dtype=bool)
            seen[array.astype(np.int64) - int(minimum)] = True
            return int(np.count_nonzero(seen))
    return int(np.unique(array).size)


@dataclass(frozen=True)
class ColumnStats:
    """Min/max/distinct-count summary of one column."""

    minimum: float
    maximum: float
    distinct: int
    count: int

    @classmethod
    def from_array(cls, array: np.ndarray) -> "ColumnStats":
        if array.size == 0:
            return cls(0.0, 0.0, 0, 0)
        minimum = array.min()
        maximum = array.max()
        return cls(
            minimum=float(minimum),
            maximum=float(maximum),
            distinct=_distinct_count(array, minimum, maximum),
            count=int(array.size),
        )

    def range_selectivity(self, low: Optional[float], high: Optional[float]) -> float:
        """Estimated fraction of rows in ``[low, high]`` assuming uniformity."""
        if self.count == 0:
            return 0.0
        span = self.maximum - self.minimum
        if span <= 0:
            return 1.0
        lo = self.minimum if low is None else max(low, self.minimum)
        hi = self.maximum if high is None else min(high, self.maximum)
        if hi < lo:
            return 0.0
        return min(1.0, max(0.0, (hi - lo) / span))

    def equality_selectivity(self) -> float:
        """Estimated fraction of rows matching one value (1 / distinct)."""
        if self.distinct == 0:
            return 0.0
        return 1.0 / self.distinct


class Database:
    """Named tables plus lazily computed column statistics."""

    def __init__(self) -> None:
        self._tables: Dict[str, Table] = {}
        self._stats: Dict[str, Dict[str, ColumnStats]] = {}

    def add(self, name: str, table: Table) -> None:
        """Register ``table`` under ``name`` (replacing any previous one)."""
        self._tables[name] = table
        self._stats.pop(name, None)

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise SchemaError(f"no table named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __iter__(self) -> Iterator[str]:
        return iter(self._tables)

    @property
    def names(self) -> tuple:
        return tuple(self._tables)

    def num_rows(self, name: str) -> int:
        return self.table(name).num_rows

    def total_bytes(self) -> int:
        """Total payload bytes across all tables (the paper's "input size")."""
        return sum(table.nbytes for table in self._tables.values())

    def stats(self, table_name: str, column_name: str) -> ColumnStats:
        """Statistics for one column, computed on first use and cached."""
        per_table = self._stats.setdefault(table_name, {})
        if column_name not in per_table:
            array = self.table(table_name).column(column_name)
            per_table[column_name] = ColumnStats.from_array(array)
        return per_table[column_name]

    def analyze(self) -> None:
        """Eagerly compute statistics for every column of every table."""
        for name, table in self._tables.items():
            for column in table.schema:
                self.stats(name, column.name)
