"""Columnar relational substrate: types, schemas, tables, expressions.

This package is the storage and expression layer every engine in the
reproduction shares.  It is deliberately engine-agnostic: the KBE baseline,
the GPL pipelined engine, and the Ocelot comparator all consume the same
:class:`Table` objects and :class:`Expression` trees.
"""

from .database import ColumnStats, Database
from .expressions import (
    And,
    Arith,
    CaseWhen,
    Col,
    Compare,
    Expression,
    InList,
    Lit,
    Not,
    Or,
    YearOf,
    col,
    lit,
)
from .partition import (
    PartitionCache,
    PartitionMetadata,
    hash_shard_assignment,
    partition_database,
    partition_table,
    round_robin_assignment,
)
from .schema import ColumnDef, TableSchema
from .table import Table
from .types import DataType, date_to_days, days_to_date

__all__ = [
    "ColumnStats",
    "Database",
    "Expression",
    "Col",
    "Lit",
    "Arith",
    "Compare",
    "And",
    "Or",
    "Not",
    "InList",
    "CaseWhen",
    "YearOf",
    "col",
    "lit",
    "ColumnDef",
    "TableSchema",
    "Table",
    "PartitionMetadata",
    "hash_shard_assignment",
    "round_robin_assignment",
    "PartitionCache",
    "partition_table",
    "partition_database",
    "DataType",
    "date_to_days",
    "days_to_date",
]
