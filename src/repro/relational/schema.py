"""Table schemas: ordered column definitions with types.

A :class:`TableSchema` is immutable; engines rely on this to share schemas
between the logical plan, the physical kernel plan, and the runtime without
defensive copies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence, Tuple

from ..errors import SchemaError
from .types import DataType

__all__ = ["ColumnDef", "TableSchema"]


@dataclass(frozen=True)
class ColumnDef:
    """One column: a name, a type, and an optional dictionary for DICT columns.

    ``dictionary`` maps int32 codes back to the original strings; it exists
    purely for presentation (decoding result sets) and never participates in
    kernel execution.
    """

    name: str
    dtype: DataType
    dictionary: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("column name must be non-empty")
        if self.dictionary is not None and self.dtype is not DataType.DICT:
            raise SchemaError(
                f"column {self.name!r}: dictionary given for non-DICT type"
            )

    def decode(self, code: int) -> str:
        """Decode a dictionary code back to its string."""
        if self.dictionary is None:
            raise SchemaError(f"column {self.name!r} has no dictionary")
        return self.dictionary[code]

    def encode(self, value: str) -> int:
        """Encode a string to its dictionary code."""
        if self.dictionary is None:
            raise SchemaError(f"column {self.name!r} has no dictionary")
        try:
            return self.dictionary.index(value)
        except ValueError:
            raise SchemaError(
                f"value {value!r} not in dictionary of column {self.name!r}"
            ) from None


@dataclass(frozen=True)
class TableSchema:
    """An ordered, immutable collection of :class:`ColumnDef`."""

    columns: Tuple[ColumnDef, ...]
    _index: dict = field(init=False, repr=False, compare=False, hash=False)

    def __post_init__(self) -> None:
        index = {}
        for position, column in enumerate(self.columns):
            if column.name in index:
                raise SchemaError(f"duplicate column name {column.name!r}")
            index[column.name] = position
        object.__setattr__(self, "_index", index)

    @classmethod
    def of(cls, *columns: ColumnDef) -> "TableSchema":
        """Build a schema from column definitions."""
        return cls(tuple(columns))

    @classmethod
    def from_pairs(cls, pairs: Sequence[Tuple[str, DataType]]) -> "TableSchema":
        """Build a schema from ``(name, dtype)`` pairs."""
        return cls(tuple(ColumnDef(name, dtype) for name, dtype in pairs))

    def __iter__(self) -> Iterator[ColumnDef]:
        return iter(self.columns)

    def __len__(self) -> int:
        return len(self.columns)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def column(self, name: str) -> ColumnDef:
        """Look up a column definition by name."""
        try:
            return self.columns[self._index[name]]
        except KeyError:
            raise SchemaError(f"no column named {name!r}") from None

    def position(self, name: str) -> int:
        """Ordinal position of ``name`` within the schema."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(f"no column named {name!r}") from None

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(column.name for column in self.columns)

    @property
    def row_width(self) -> int:
        """Bytes per row across all columns."""
        return sum(column.dtype.width for column in self.columns)

    def project(self, names: Sequence[str]) -> "TableSchema":
        """A new schema containing only ``names``, in the given order."""
        return TableSchema(tuple(self.column(name) for name in names))

    def concat(self, other: "TableSchema") -> "TableSchema":
        """Schema of a join output: our columns followed by ``other``'s.

        Duplicate names are rejected; plans qualify columns before joining.
        """
        return TableSchema(self.columns + other.columns)

    def rename(self, mapping: dict) -> "TableSchema":
        """A new schema with columns renamed per ``mapping`` (old -> new)."""
        renamed = []
        for column in self.columns:
            new_name = mapping.get(column.name, column.name)
            renamed.append(
                ColumnDef(new_name, column.dtype, column.dictionary)
            )
        return TableSchema(tuple(renamed))
