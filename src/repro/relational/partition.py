"""Deterministic table partitioning for multi-device execution.

The shard layer (:mod:`repro.shard`) splits one logical database into N
per-shard databases: the *partitioned* table (normally the fact table a
query streams) is cut into N disjoint row sets, every other table is
replicated by reference (tables are immutable, so replication is free).

Two schemes, both fully deterministic:

* **hash** — rows go to ``mix64(key) % num_shards`` where ``mix64`` is
  the splitmix64 finalizer.  Equal keys always land on the same shard,
  so hash partitioning on a join key keeps one build-side match group
  per shard; partitioning on a group key keeps whole groups per shard.
  The mix is platform-independent (pure int64 arithmetic), so the same
  table and key give the same assignment on every machine and run.
* **round-robin** — row ``i`` goes to shard ``i % num_shards``.  The
  fallback when no integral key exists; balances perfectly but gives no
  locality guarantee.

:func:`partition_database` returns the per-shard databases plus a
:class:`PartitionMetadata` record (scheme, per-shard row counts, skew)
that the scatter-gather executor surfaces on its shard report.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import SchemaError
from .database import Database
from .table import Table

__all__ = [
    "PartitionCache",
    "PartitionMetadata",
    "hash_shard_assignment",
    "round_robin_assignment",
    "partition_table",
    "partition_database",
]


def _splitmix64(values: np.ndarray) -> np.ndarray:
    """The splitmix64 finalizer over an int64 array (vectorized).

    A strong deterministic mixer: consecutive key ranges (orderkeys,
    dictionary codes) spread uniformly instead of striping.
    """
    with np.errstate(over="ignore"):
        z = values.astype(np.uint64, copy=True)
        z += np.uint64(0x9E3779B97F4A7C15)
        z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        z = z ^ (z >> np.uint64(31))
    return z


def hash_shard_assignment(keys: np.ndarray, num_shards: int) -> np.ndarray:
    """Shard index per row: ``mix64(key) % num_shards``.

    ``keys`` must be integral (or boolean); callers fall back to
    :func:`round_robin_assignment` otherwise.
    """
    if num_shards < 1:
        raise SchemaError("num_shards must be at least 1")
    if not (
        np.issubdtype(keys.dtype, np.integer) or keys.dtype == np.bool_
    ):
        raise SchemaError(
            f"hash partitioning needs an integral key column, got "
            f"{keys.dtype}"
        )
    mixed = _splitmix64(keys.astype(np.int64))
    return (mixed % np.uint64(num_shards)).astype(np.int64)


def round_robin_assignment(num_rows: int, num_shards: int) -> np.ndarray:
    """Shard index per row: ``row % num_shards``."""
    if num_shards < 1:
        raise SchemaError("num_shards must be at least 1")
    return np.arange(num_rows, dtype=np.int64) % num_shards


@dataclass(frozen=True)
class PartitionMetadata:
    """How one table was cut into shards (surfaced on shard reports)."""

    table: str
    scheme: str  # "hash" | "round-robin"
    key: Optional[str]  # partitioning column; None for round-robin
    num_shards: int
    shard_rows: Tuple[int, ...]

    @property
    def total_rows(self) -> int:
        return sum(self.shard_rows)

    @property
    def empty_shards(self) -> int:
        return sum(1 for rows in self.shard_rows if rows == 0)

    @property
    def skew(self) -> float:
        """Largest shard over the mean shard (1.0 = perfectly balanced).

        The standard imbalance measure: a skew of N on N shards means
        every row hashed to one shard and sharding buys nothing.
        """
        if self.total_rows == 0 or self.num_shards == 0:
            return 1.0
        mean = self.total_rows / self.num_shards
        return max(self.shard_rows) / mean

    def describe(self) -> str:
        target = f"{self.table}.{self.key}" if self.key else self.table
        return (
            f"{self.scheme}({target}) x{self.num_shards}: "
            f"rows {list(self.shard_rows)}, skew {self.skew:.2f}"
        )


def partition_table(
    table: Table,
    num_shards: int,
    key: Optional[str] = None,
) -> Tuple[List[Table], np.ndarray]:
    """Cut ``table`` into ``num_shards`` disjoint row subsets.

    Hash-partitions on ``key`` when given (the column must be integral);
    round-robins otherwise.  Returns the per-shard tables and the
    per-row shard assignment.  Row order *within* each shard preserves
    the source row order (assignments are applied with boolean masks),
    so two runs produce byte-identical shards.
    """
    if key is not None:
        assignment = hash_shard_assignment(table.column(key), num_shards)
    else:
        assignment = round_robin_assignment(table.num_rows, num_shards)
    shards = [
        table.filter(assignment == shard) for shard in range(num_shards)
    ]
    return shards, assignment


class PartitionCache:
    """Thread-safe compute-once memo for partition layouts.

    The sharded executor partitions the same (table, key, pool-width)
    triple for every query that streams that table; concurrent
    worker-pool members must neither corrupt the memo nor compute the
    same layout twice.  The lock is held *across* the factory call so
    the first requester computes and every concurrent requester blocks
    and then reuses the identical (deterministic) layout — partitioning
    is pure, so which thread wins never matters.
    """

    def __init__(self) -> None:
        self._entries: Dict[Hashable, object] = {}
        self._lock = threading.RLock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get_or_compute(
        self, key: Hashable, factory: Callable[[], object]
    ) -> object:
        with self._lock:
            if key not in self._entries:
                self._entries[key] = factory()
            return self._entries[key]

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    # dict-like read surface (snapshot semantics under the lock)

    def keys(self):
        with self._lock:
            return list(self._entries.keys())

    def __getitem__(self, key: Hashable) -> object:
        with self._lock:
            return self._entries[key]

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def __eq__(self, other: object) -> bool:
        with self._lock:
            if isinstance(other, PartitionCache):
                return self._entries == other._entries
            if isinstance(other, dict):
                return self._entries == other
            return NotImplemented


def partition_database(
    database: Database,
    num_shards: int,
    table: str,
    key: Optional[str] = None,
) -> Tuple[List[Database], PartitionMetadata]:
    """Per-shard databases: ``table`` partitioned, everything else shared.

    Each returned :class:`Database` holds shard ``i`` of the partitioned
    table plus every other table *by reference* — tables are immutable,
    so the only per-shard cost is the partitioned table's row subset and
    a fresh (lazily computed) statistics cache.
    """
    source = database.table(table)
    shard_tables, _ = partition_table(source, num_shards, key=key)
    shard_databases: List[Database] = []
    for shard_table in shard_tables:
        shard_db = Database()
        for name in database.names:
            shard_db.add(name, shard_table if name == table else database.table(name))
        shard_databases.append(shard_db)
    metadata = PartitionMetadata(
        table=table,
        scheme="hash" if key is not None else "round-robin",
        key=key,
        num_shards=num_shards,
        shard_rows=tuple(shard.num_rows for shard in shard_tables),
    )
    return shard_databases, metadata
