#!/usr/bin/env python
"""Chaos soak harness for the deadline-aware serving stack.

Drives hundreds of queries through one long-lived
:class:`~repro.serve.QueryService` under a seeded storm of injected
faults, tight per-query deadlines, and a bounded admission queue, and
asserts the serving resilience invariants the whole stack is built on:

* **no hangs** — every drain completes (the pipeline watchdog converts
  a wedged simulator into a typed error, never a stuck process);
* **no checksum drift** — every query that completes, no matter how
  many retries, checkpoint resumes, fallbacks, or breaker degradations
  it went through, returns rows identical to a clean single-engine run;
* **consistent counters** — outcome counts partition the trace, fired
  faults never exceed scheduled ones, checkpoint resumes never exceed
  recordings, deadline-tagged queries never report ``ok``;
* **determinism** — two full soaks from the same seed produce
  byte-identical drain-by-drain counter witnesses.

Record a baseline (written as ``SOAK_baseline.json`` at the repo root)::

    python scripts/soak.py --queries 500 --seed 20160626

Re-verify a recorded baseline (parameters are read from the file, so CI
needs no flag soup; exits non-zero on any drift)::

    python scripts/soak.py --check SOAK_baseline.json

Device storm: ``--kill-devices N`` serves through an N-device pool and
replaces part of the fault stream with seeded ``device_down`` kills
fired in back-to-back pairs against one victim device, so the failure
domain ladder (relocation, then quarantine, then probation) is
exercised end to end; on top of the standard invariants the storm
asserts at least one shard relocation and at least one quarantine
trip, and that every relocated or degraded-pool result still matches
the clean single-engine checksum::

    python scripts/soak.py --kill-devices 4 --queries 120 --runs 2
"""

from __future__ import annotations

import argparse
import dataclasses
import hashlib
import json
import pathlib
import platform
import random
import subprocess
import sys
import time

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

#: The TPC-H trace the soak rotates through (the paper's five queries).
QUERY_NAMES = ("Q5", "Q7", "Q8", "Q9", "Q14")

#: Soak parameters recorded into (and re-read from) the baseline file.
DEFAULT_PARAMS = {
    "queries": 500,
    "seed": 20160626,  # the paper's publication date
    "scale": 0.02,
    "batch": 40,  # nominal drain size; actual sizes jitter around it
    "max_pending": 36,  # < batch, so overfull drains exercise shedding
    "queue_policy": "shed-oldest",
    "breaker_threshold": 2,
    "breaker_cooldown": 2,
    "breaker_probes": 1,
    "fault_rate": 0.35,  # share of queries carrying a seeded fault plan
    "deadline_rate": 0.05,  # share carrying an always-trips deadline
    "deadline_cycles": 500.0,  # far below any query's real cycle cost
    "max_drain_seconds": 120.0,  # crude no-hang guard per drain
    "workers": 1,  # host worker-pool width; any width must match the witness
    "devices": 1,  # pool size; > 1 serves sharded (the device storm)
    "kill_rate": 0.2,  # chance a query opens a device_down kill pair
    "max_relocations": 2,  # per-query shard relocation budget
    "quarantine_threshold": 2,  # consecutive failures before quarantine
}


def _git_rev() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except Exception:
        return "unknown"


def _result_checksum(result) -> str:
    """Order-independent digest of the result rows (bench.py's digest)."""
    rows = sorted(
        tuple(round(float(value), 6) for value in row)
        for row in result.rows()
    )
    return hashlib.sha1(repr(rows).encode()).hexdigest()[:16]


def reference_checksums(database, device) -> dict:
    """Clean single-query KBE checksums every soaked result must match."""
    from repro.kbe import KBEEngine
    from repro.tpch import query_by_name

    engine = KBEEngine(database, device)
    return {
        name: _result_checksum(engine.execute(query_by_name(name)))
        for name in QUERY_NAMES
    }


class SoakViolation(AssertionError):
    """An invariant the soak is supposed to prove was broken."""


def run_soak(params: dict, verbose: bool = True) -> dict:
    """One full soak; returns the aggregate + determinism witness."""
    from repro.gpu import device_by_name
    from repro.faults import FaultPlan
    from repro.model import clear_calibration_cache, clear_search_cache
    from repro.serve import QueryService
    from repro.tpch import generate_database, query_by_name

    # Module-level model caches would otherwise leak warmth from a
    # previous run into this one and break the determinism witness.
    clear_calibration_cache()
    clear_search_cache()

    device = device_by_name("amd")
    database = generate_database(scale=params["scale"], seed=1)
    references = reference_checksums(database, device)
    num_devices = params.get("devices", 1)
    pool = None
    if num_devices > 1:
        from repro.shard import DevicePool

        pool = DevicePool(num_devices)
    service = QueryService(
        database,
        device,
        pool=pool,
        breaker_threshold=params["breaker_threshold"],
        breaker_cooldown=params["breaker_cooldown"],
        breaker_probes=params["breaker_probes"],
        max_pending=params["max_pending"],
        queue_policy=params["queue_policy"],
        workers=params.get("workers", 1),
        max_relocations=params.get("max_relocations", 2),
        quarantine_threshold=params.get("quarantine_threshold", 2),
    )

    rng = random.Random(params["seed"])
    total = params["queries"]
    batch = params["batch"]
    witness = []  # per-drain counters_dict list; hashed for determinism
    outcomes = {"ok": 0, "failed": 0, "deadline": 0, "shed": 0, "cached": 0}
    checkpoint = {"recorded": 0, "resumed": 0, "evicted": 0, "invalidated": 0}
    faults_scheduled = faults_fired = 0
    breaker_degraded = 0
    relocations = pool_quarantines = pool_probes = 0
    checksum_failures = []
    submitted = 0
    drains = 0
    # Device-storm kills fire in back-to-back pairs against one victim
    # device, so the quarantine threshold (2 consecutive failures) is
    # actually reached instead of being reset by an intervening success.
    kill_mode = pool is not None and params.get("kill_rate", 0.0) > 0
    kill_streak = 0
    kill_victim = 0
    started = time.perf_counter()

    while submitted < total:
        size = min(total - submitted, rng.randrange(batch - 8, batch + 5))
        deadline_tickets = set()
        tickets = {}
        for _ in range(size):
            spec = query_by_name(QUERY_NAMES[rng.randrange(len(QUERY_NAMES))])
            if rng.random() < params["deadline_rate"]:
                spec = dataclasses.replace(
                    spec, deadline_cycles=params["deadline_cycles"]
                )
            fault_plan = None
            if kill_mode and kill_streak:
                kill_streak -= 1
                fault_plan = FaultPlan.parse(f"device_down@dev{kill_victim}")
            elif kill_mode and rng.random() < params["kill_rate"]:
                kill_victim = rng.randrange(num_devices)
                kill_streak = 1
                fault_plan = FaultPlan.parse(f"device_down@dev{kill_victim}")
            elif rng.random() < params["fault_rate"]:
                fault_plan = FaultPlan.from_seed(
                    rng.randrange(1 << 30), count=rng.randrange(1, 4)
                )
            ticket = service.enqueue(spec, fault_plan=fault_plan)
            tickets[ticket] = spec.name
            if spec.deadline_cycles is not None:
                deadline_tickets.add(ticket)
        submitted += size

        drain_started = time.perf_counter()
        report = service.drain()
        drain_seconds = time.perf_counter() - drain_started
        drains += 1

        # -- invariants, checked on every drain ---------------------------
        if drain_seconds > params["max_drain_seconds"]:
            raise SoakViolation(
                f"drain {drains} took {drain_seconds:.1f}s "
                f"(> {params['max_drain_seconds']}s): possible hang"
            )
        counts = {
            key: sum(1 for r in report.records if r.outcome == key)
            for key in outcomes
        }
        if sum(counts.values()) != report.num_queries:
            raise SoakViolation(
                f"drain {drains}: outcomes {counts} do not partition "
                f"{report.num_queries} records"
            )
        if report.completed + report.failed != report.num_queries:
            raise SoakViolation(
                f"drain {drains}: completed {report.completed} + failed "
                f"{report.failed} != {report.num_queries}"
            )
        if report.faults_fired_total > report.faults_scheduled:
            raise SoakViolation(
                f"drain {drains}: {report.faults_fired_total} faults fired "
                f"but only {report.faults_scheduled} were scheduled"
            )
        for record in report.records:
            if record.index in deadline_tickets and record.outcome == "ok":
                raise SoakViolation(
                    f"drain {drains}: ticket {record.index} carried a "
                    f"{params['deadline_cycles']}-cycle deadline yet "
                    "reported ok"
                )
            if record.outcome == "ok":
                checksum = _result_checksum(service.result_for(record.index))
                if checksum != references[record.query]:
                    checksum_failures.append(
                        (record.index, record.query, checksum)
                    )

        for key, value in counts.items():
            outcomes[key] += value
        for key in checkpoint:
            checkpoint[key] += report.checkpoint.get(key, 0)
        if checkpoint["resumed"] > checkpoint["recorded"]:
            raise SoakViolation(
                f"drain {drains}: more segments resumed than ever recorded"
            )
        faults_scheduled += report.faults_scheduled
        faults_fired += report.faults_fired_total
        breaker_degraded += report.breaker_degraded
        relocations += report.relocations
        pool_quarantines += report.pool_quarantines
        pool_probes += report.pool_probes
        witness.append(report.counters_dict())
        if verbose:
            print(
                f"  drain {drains:>2}: {report.num_queries:>2} queries | "
                f"ok {counts['ok']:>2} failed {counts['failed']} "
                f"deadline {counts['deadline']} shed {counts['shed']} "
                f"cached {counts['cached']} | "
                f"faults {report.faults_fired_total}/"
                f"{report.faults_scheduled} | "
                f"resumed {report.checkpoint.get('resumed', 0)} | "
                f"{drain_seconds:.1f}s"
            )

    if checksum_failures:
        raise SoakViolation(
            f"result checksum drift on {len(checksum_failures)} queries: "
            f"{checksum_failures[:5]}"
        )
    if kill_mode:
        if relocations < 1:
            raise SoakViolation(
                "device storm produced no shard relocations: the kill "
                "schedule never exercised the failure-domain ladder"
            )
        if pool_quarantines < 1:
            raise SoakViolation(
                "device storm produced no quarantine trips: back-to-back "
                "kills never pushed a device past the threshold"
            )
    digest = hashlib.sha1(repr(witness).encode()).hexdigest()
    return {
        "drains": drains,
        "submitted": submitted,
        "outcomes": outcomes,
        "breaker_degraded": breaker_degraded,
        "breaker": dict(sorted(witness[-1]["breaker"].items())),
        "checkpoint": checkpoint,
        "faults_scheduled": faults_scheduled,
        "faults_fired": faults_fired,
        "relocations": relocations,
        "pool_quarantines": pool_quarantines,
        "pool_probes": pool_probes,
        "references": references,
        "witness_sha1": digest,
        "wall_seconds": round(time.perf_counter() - started, 2),
    }


def soak(params: dict, runs: int = 2, verbose: bool = True) -> dict:
    """Run the soak ``runs`` times and assert cross-run determinism."""
    results = []
    for attempt in range(max(1, runs)):
        if verbose:
            print(f"soak run {attempt + 1}/{runs}:")
        results.append(run_soak(params, verbose=verbose))
    first = results[0]
    for attempt, other in enumerate(results[1:], start=2):
        if other["witness_sha1"] != first["witness_sha1"]:
            raise SoakViolation(
                f"run {attempt} witness {other['witness_sha1'][:12]} != "
                f"run 1 witness {first['witness_sha1'][:12]}: "
                "same-seed soak is not deterministic"
            )
    return first


def check(baseline_path: str, verbose: bool = True, workers=None) -> int:
    """Re-run the soak with a baseline's parameters; report any drift.

    ``workers`` overrides only the host worker-pool width — the
    determinism contract says any width must reproduce the baseline's
    witness byte-for-byte, so a ``--workers 4`` check against a
    sequentially recorded baseline is exactly the parallel-drain
    equivalence gate.
    """
    baseline = json.loads(pathlib.Path(baseline_path).read_text())
    params = dict(DEFAULT_PARAMS)
    params.update(baseline.get("params", {}))
    if workers is not None:
        params["workers"] = workers
    result = soak(params, runs=1, verbose=verbose)
    failures = []
    for key in (
        "outcomes",
        "checkpoint",
        "faults_scheduled",
        "faults_fired",
        "relocations",
        "pool_quarantines",
        "references",
        "witness_sha1",
    ):
        if result[key] != baseline.get(key):
            failures.append(
                f"{key}: baseline {baseline.get(key)!r} != now {result[key]!r}"
            )
    if failures:
        print("soak drift against " + baseline_path + ":")
        for failure in failures:
            print("  " + failure)
        return 1
    print(
        f"soak matches {baseline_path}: {result['submitted']} queries, "
        f"witness {result['witness_sha1'][:12]}"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI parser (importable so the docs lint can verify flags)."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--queries",
        type=int,
        default=DEFAULT_PARAMS["queries"],
        help="total queries to push through the service (default 500)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=DEFAULT_PARAMS["seed"],
        help="master seed for the fault/deadline/batch schedule",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=DEFAULT_PARAMS["scale"],
        help="TPC-H scale factor for the soaked database (default 0.02)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "host worker threads per admission round (default: the "
            "baseline's recorded width, else 1); the soak witness must "
            "be byte-identical at any width"
        ),
    )
    parser.add_argument(
        "--kill-devices",
        type=int,
        default=None,
        metavar="N",
        help=(
            "device-storm scenario: serve through an N-device pool and "
            "replace part of the fault stream with seeded device_down "
            "kill pairs, asserting >=1 shard relocation and >=1 "
            "quarantine trip on top of the standard invariants"
        ),
    )
    parser.add_argument(
        "--runs",
        type=int,
        default=2,
        help=(
            "full same-seed repetitions; >1 asserts cross-run "
            "determinism (default 2)"
        ),
    )
    parser.add_argument(
        "--out",
        default=str(REPO / "SOAK_baseline.json"),
        help="where to write the soak baseline JSON",
    )
    parser.add_argument(
        "--check",
        metavar="BASELINE",
        help=(
            "re-run with BASELINE's recorded parameters and exit "
            "non-zero on any counter/checksum drift"
        ),
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-drain progress"
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    verbose = not args.quiet
    if args.check:
        return check(args.check, verbose=verbose, workers=args.workers)

    params = dict(DEFAULT_PARAMS)
    params["queries"] = args.queries
    params["seed"] = args.seed
    params["scale"] = args.scale
    if args.workers is not None:
        params["workers"] = args.workers
    if args.kill_devices is not None:
        if args.kill_devices < 2:
            parser_error = "--kill-devices needs a pool of at least 2"
            print(parser_error, file=sys.stderr)
            return 2
        params["devices"] = args.kill_devices
    started = time.perf_counter()
    result = soak(params, runs=args.runs, verbose=verbose)
    payload = {
        "params": params,
        "meta": {
            "git_rev": _git_rev(),
            "python": platform.python_version(),
            "platform": platform.platform(),
            "runs": args.runs,
            "total_seconds": round(time.perf_counter() - started, 2),
        },
    }
    payload.update(
        {
            key: result[key]
            for key in (
                "drains",
                "submitted",
                "outcomes",
                "breaker_degraded",
                "breaker",
                "checkpoint",
                "faults_scheduled",
                "faults_fired",
                "relocations",
                "pool_quarantines",
                "pool_probes",
                "references",
                "witness_sha1",
            )
        }
    )
    out = pathlib.Path(args.out)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(
        f"soak ok: {result['submitted']} queries in {result['drains']} "
        f"drains, outcomes {result['outcomes']}, "
        f"witness {result['witness_sha1'][:12]} -> {out}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
