#!/usr/bin/env python
"""Perf-trajectory benchmark harness.

Runs a fixed suite — Q5/Q9 x {GPL, KBE} x SF {0.1, 0.5} plus a serve
drain, a sharded serve drain (the same trace on a 1-device vs a
4-device pool), a hot-vs-cold cached drain (the same trace twice
through one caching service, gated on byte-identical checksums and a
>= 2x hot speedup), and a host-parallelism drain (the serve trace and
a 4-device scatter at ``--workers`` 1 vs 4, gated on byte-identical
checksums with wall-clock informational) — and writes
``BENCH_<label>.json`` next to the repository root so
every performance PR carries machine-readable before/after evidence from
the same machine:

    python scripts/bench.py --label baseline      # full suite
    python scripts/bench.py --scale 0.1 --label ci  # CI smoke subset

Each engine measurement runs against a *fresh* :class:`~repro.relational
.database.Database` wrapper (shared column arrays, cold statistics
cache), so the recorded wall-clock covers the full cold path the first
query of a session pays: optimize + configuration search + execution.
The serve drain reuses one service so plan/search cache behaviour is
visible in the recorded cache counters.

The JSON layout is stable: ``meta`` (label, git revision, python/numpy
versions), ``entries`` (one per query x engine x scale with wall-clock
milliseconds, result rows, a result checksum, and simulator cycles),
``serve`` (drain wall-clock, throughput, and cache/search stats),
``shard`` (per-pool-size simulated makespan, the 1->4 device
``sim_speedup``, and per-query checksums that must match across pool
sizes), ``cache`` (cold/hot drain wall-clock, the hot speedup,
per-ticket checksums, and the dedupe exactly-once witness) and
``workers`` (serve drain + 4-device scatter at host worker widths 1
and 4: per-width wall-clock and pool-task counts, with per-ticket
checksums and simulated cycles that must match across widths).
Compare two files with::

    python scripts/bench.py --diff BENCH_baseline.json BENCH_after.json

``--diff`` reports speedups and flags checksum drift; ``--check`` gates
on the machine-independent invariants only (checksums, row counts,
simulated cycles — never wall-clock), which is what CI enforces against
the committed ``BENCH_baseline.json``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import subprocess
import sys
import time

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

DEFAULT_SCALES = (0.1, 0.5)
QUERIES = ("Q5", "Q9")
ENGINES = ("GPL", "KBE")
SERVE_QUERIES = ("Q5", "Q9", "Q14")
SERVE_REPEAT = 3
SERVE_SCALE = 0.1
#: Pool sizes for the sharded serve drain (single device vs a fleet).
SHARD_DEVICES = (1, 4)
#: Host worker-pool widths for the workers scenario (sequential vs pool).
WORKERS_CONFIGS = (1, 4)


def _git_rev() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except Exception:
        return "unknown"


def _fresh_database(tables):
    """A new Database (cold stats cache) over already-generated tables."""
    from repro.relational import Database

    database = Database()
    for name, table in tables.items():
        database.add(name, table)
    return database


def _result_checksum(result) -> str:
    """Order-independent digest of the result rows (repr-rounded)."""
    import hashlib

    rows = sorted(
        tuple(round(float(value), 6) for value in row)
        for row in result.rows()
    )
    return hashlib.sha1(repr(rows).encode()).hexdigest()[:16]


def _make_engine(kind: str, database, device):
    from repro.core import GPLEngine
    from repro.kbe import KBEEngine

    if kind == "GPL":
        return GPLEngine(database, device)
    return KBEEngine(database, device)


def run_suite(scales, repeats: int) -> dict:
    from repro.gpu import AMD_A10
    from repro.model.search import clear_search_cache, search_cache_stats
    from repro.tpch import generate_database, query_by_name

    device = AMD_A10
    entries = []
    for scale in scales:
        generated = generate_database(scale=scale)
        tables = {name: generated.table(name) for name in generated.names}
        for query in QUERIES:
            for engine_kind in ENGINES:
                best_ms = None
                rows = checksum = cycles = None
                for _ in range(max(1, repeats)):
                    database = _fresh_database(tables)
                    engine = _make_engine(engine_kind, database, device)
                    spec = query_by_name(query)
                    start = time.perf_counter()
                    result = engine.execute(spec)
                    elapsed_ms = (time.perf_counter() - start) * 1000.0
                    if best_ms is None or elapsed_ms < best_ms:
                        best_ms = elapsed_ms
                    rows = result.num_rows
                    checksum = _result_checksum(result)
                    cycles = result.counters.elapsed_cycles
                entries.append(
                    {
                        "query": query,
                        "engine": engine_kind,
                        "scale": scale,
                        "wall_ms": round(best_ms, 3),
                        "rows": rows,
                        "checksum": checksum,
                        "sim_cycles": round(cycles, 1),
                    }
                )
                print(
                    f"  {query:>4} {engine_kind:>4} sf={scale:<4} "
                    f"{best_ms:9.1f} ms  {rows} rows"
                )

    # Serve drain: one service, repeated queries, warm caches visible.
    from repro.serve import QueryService

    clear_search_cache()
    serve_scale = min(scales) if SERVE_SCALE not in scales else SERVE_SCALE
    database = generate_database(scale=serve_scale)
    service = QueryService(database, device)
    specs = [
        query_by_name(name)
        for name in SERVE_QUERIES
        for _ in range(SERVE_REPEAT)
    ]
    start = time.perf_counter()
    report = service.run(specs)
    serve_ms = (time.perf_counter() - start) * 1000.0
    serve = {
        "scale": serve_scale,
        "queries": len(specs),
        "wall_ms": round(serve_ms, 3),
        "completed": report.completed,
        "failed": report.failed,
        "throughput_qps": round(report.throughput_qps, 3),
        "p50_ms": round(report.p50_latency_ms, 3),
        "p95_ms": round(report.p95_latency_ms, 3),
        "plan_cache": dict(report.plan_cache),
        "search_cache": dict(search_cache_stats()),
    }
    print(
        f" serve sf={serve_scale}: {serve_ms:.1f} ms, "
        f"{report.throughput_qps:.2f} q/s"
    )
    shard = run_shard_scenario(
        {name: database.table(name) for name in database.names},
        serve_scale,
    )
    cache = run_cache_scenario(
        {name: database.table(name) for name in database.names},
        serve_scale,
    )
    workers = run_workers_scenario(
        {name: database.table(name) for name in database.names},
        serve_scale,
    )
    return {
        "entries": entries,
        "serve": serve,
        "shard": shard,
        "cache": cache,
        "workers": workers,
    }


def run_shard_scenario(tables, scale) -> dict:
    """Sharded serve drain: the same trace on 1 vs 4 simulated devices.

    The scaling witness is *simulated* makespan (machine-independent):
    scatter-gather overlaps shard work across pool devices, so the
    4-device drain should finish the trace in well under the 1-device
    simulated time.  Per-query result checksums must be identical across
    pool sizes — ``--check`` gates on them exactly like the engine
    checksums.
    """
    from repro.gpu import AMD_A10
    from repro.serve import QueryService
    from repro.shard import DevicePool
    from repro.tpch import query_by_name

    specs = [
        query_by_name(name)
        for name in SERVE_QUERIES
        for _ in range(SERVE_REPEAT)
    ]
    section = {"scale": scale, "queries": len(specs), "configs": {}}
    checksums = {}
    for devices in SHARD_DEVICES:
        database = _fresh_database(tables)
        pool = None if devices == 1 else DevicePool(devices)
        service = QueryService(database, AMD_A10, pool=pool)
        sums = {
            name: _result_checksum(service.submit(query_by_name(name)))
            for name in SERVE_QUERIES
        }
        start = time.perf_counter()
        report = service.run(specs)
        wall_ms = (time.perf_counter() - start) * 1000.0
        checksums[devices] = sums
        section["configs"][str(devices)] = {
            "devices": devices,
            "wall_ms": round(wall_ms, 3),
            "makespan_ms": round(report.makespan_ms, 6),
            "throughput_qps": round(report.throughput_qps, 3),
            "completed": report.completed,
            "failed": report.failed,
            "checksums": sums,
        }
        print(
            f" shard x{devices} sf={scale}: simulated makespan "
            f"{report.makespan_ms:.3f} ms, {report.throughput_qps:.2f} q/s"
        )
    first, last = SHARD_DEVICES[0], SHARD_DEVICES[-1]
    section["checksums_match"] = checksums[first] == checksums[last]
    base = section["configs"][str(first)]["makespan_ms"]
    fleet = section["configs"][str(last)]["makespan_ms"]
    section["sim_speedup"] = round(base / fleet, 3) if fleet else 0.0
    print(
        f" shard scaling {first}->{last} devices: "
        f"{section['sim_speedup']:.2f}x simulated throughput, checksums "
        f"{'match' if section['checksums_match'] else 'DIVERGE'}"
    )
    return section


def run_cache_scenario(tables, scale) -> dict:
    """Hot-vs-cold serve drain through the result/segment caches.

    One service with the caches and dedupe on drains the same trace
    twice.  The cold drain executes (deduped) work and populates the
    caches; the hot drain must answer every query from the result cache
    — so it skips simulated execution entirely and its wall-clock is
    bounded by cache lookups.  ``--check`` gates on the
    machine-independent invariants (byte-identical per-ticket checksums
    across drains and against the baseline, a dedupe round that
    executed exactly once) plus the one wall-clock property robust
    enough to gate: the hot drain beating the cold one by >= 2x.
    """
    from repro.gpu import AMD_A10
    from repro.serve import QueryService
    from repro.tpch import query_by_name

    specs = [
        query_by_name(name)
        for name in SERVE_QUERIES
        for _ in range(SERVE_REPEAT)
    ]
    database = _fresh_database(tables)
    service = QueryService(
        database,
        AMD_A10,
        result_cache_bytes=64 * 1024 * 1024,
        segment_cache_bytes=256 * 1024 * 1024,
        batch_dedupe=True,
    )
    drains = []
    checksums = []
    for label in ("cold", "hot"):
        base_ticket = service._next_ticket
        start = time.perf_counter()
        report = service.run(specs)
        wall_ms = (time.perf_counter() - start) * 1000.0
        sums = {
            f"{position}:{spec.name}": _result_checksum(
                service.results[base_ticket + position]
            )
            for position, spec in enumerate(specs)
        }
        checksums.append(sums)
        drains.append(
            {
                "wall_ms": round(wall_ms, 3),
                "completed": report.completed,
                "cached": report.cached,
                "deduped": report.deduped,
                "shared_scan_rounds": report.shared_scan_rounds,
            }
        )
        print(
            f" cache {label} sf={scale}: {wall_ms:.1f} ms, "
            f"{report.cached} cached, {report.deduped} deduped"
        )
    cold, hot = drains
    speedup = (
        round(cold["wall_ms"] / hot["wall_ms"], 3) if hot["wall_ms"] else 0.0
    )

    # Dedupe exactly-once: N identical pending queries, one execution.
    dedupe_service = QueryService(
        database, AMD_A10, batch_dedupe=True
    )
    dedupe_n = 6
    dedupe_report = dedupe_service.run(
        [query_by_name("Q5") for _ in range(dedupe_n)]
    )
    executed = sum(
        1
        for record in dedupe_report.records
        if record.outcome == "ok" and not record.deduped
    )
    reference = _result_checksum(dedupe_service.results[0])
    rows_correct = all(
        _result_checksum(dedupe_service.results[ticket]) == reference
        for ticket in range(dedupe_n)
    )
    print(
        f" cache dedupe: {dedupe_n} identical queries -> {executed} "
        f"executed, rows {'correct' if rows_correct else 'DIVERGE'}"
    )

    section = {
        "scale": scale,
        "queries": len(specs),
        "cold": cold,
        "hot": hot,
        "speedup": speedup,
        "checksums_match": checksums[0] == checksums[1],
        "checksums": checksums[0],
        "dedupe": {
            "queries": dedupe_n,
            "executed": executed,
            "rows_correct": rows_correct,
        },
    }
    print(
        f" cache hot/cold: {speedup:.2f}x wall-clock, checksums "
        f"{'match' if section['checksums_match'] else 'DIVERGE'}"
    )
    return section


def run_workers_scenario(tables, scale) -> dict:
    """Host-parallel drain and scatter: ``--workers`` 1 vs 4.

    The same serve trace drains through a single-device service and the
    same two queries scatter across a 4-device pool, first sequentially
    and then on a 4-thread host worker pool.  The determinism contract
    — byte-identical per-ticket checksums (and simulated cycles on the
    scatter) at every worker width — is what ``--check`` gates on;
    wall-clock is recorded per width but stays informational, because
    whether the pool pays for itself depends on how much of the work
    releases the GIL on the recording machine.
    """
    from repro.gpu import AMD_A10
    from repro.serve import QueryService
    from repro.shard import DevicePool, ShardedExecutor
    from repro.tpch import query_by_name

    specs = [
        query_by_name(name)
        for name in SERVE_QUERIES
        for _ in range(SERVE_REPEAT)
    ]
    section = {
        "scale": scale,
        "queries": len(specs),
        "serve": {},
        "shard": {},
    }
    serve_sums = {}
    for workers in WORKERS_CONFIGS:
        database = _fresh_database(tables)
        service = QueryService(database, AMD_A10, workers=workers)
        start = time.perf_counter()
        report = service.run(specs)
        wall_ms = (time.perf_counter() - start) * 1000.0
        sums = {
            f"{position}:{spec.name}": _result_checksum(
                service.results[position]
            )
            for position, spec in enumerate(specs)
        }
        serve_sums[workers] = sums
        section["serve"][str(workers)] = {
            "workers": workers,
            "wall_ms": round(wall_ms, 3),
            "completed": report.completed,
            "pool_tasks": report.pool_tasks,
            "checksums": sums,
        }
        print(
            f" workers serve x{workers} sf={scale}: {wall_ms:.1f} ms, "
            f"{report.pool_tasks} pool tasks"
        )
    shard_sums = {}
    for workers in WORKERS_CONFIGS:
        database = _fresh_database(tables)
        executor = ShardedExecutor(
            database, DevicePool(4), workers=workers
        )
        start = time.perf_counter()
        results = {
            name: executor.execute(query_by_name(name))
            for name in QUERIES
        }
        wall_ms = (time.perf_counter() - start) * 1000.0
        sums = {
            name: _result_checksum(result)
            for name, result in results.items()
        }
        shard_sums[workers] = sums
        section["shard"][str(workers)] = {
            "workers": workers,
            "wall_ms": round(wall_ms, 3),
            "checksums": sums,
            "sim_cycles": {
                name: round(result.counters.elapsed_cycles, 1)
                for name, result in results.items()
            },
        }
        print(
            f" workers shard x{workers} sf={scale}: {wall_ms:.1f} ms "
            f"(4-device scatter)"
        )
    first, last = WORKERS_CONFIGS[0], WORKERS_CONFIGS[-1]
    section["checksums_match"] = (
        serve_sums[first] == serve_sums[last]
        and shard_sums[first] == shard_sums[last]
        and section["shard"][str(first)]["sim_cycles"]
        == section["shard"][str(last)]["sim_cycles"]
    )
    print(
        f" workers {first}->{last}: checksums "
        f"{'match' if section['checksums_match'] else 'DIVERGE'}"
    )
    return section


def diff(before_path: str, after_path: str) -> int:
    before = json.loads(pathlib.Path(before_path).read_text())
    after = json.loads(pathlib.Path(after_path).read_text())
    by_key = {
        (e["query"], e["engine"], e["scale"]): e
        for e in before.get("entries", [])
    }
    print(f"{'entry':<24}{'before ms':>12}{'after ms':>12}{'speedup':>9}")
    mismatched = 0
    for entry in after.get("entries", []):
        key = (entry["query"], entry["engine"], entry["scale"])
        base = by_key.get(key)
        if base is None:
            continue
        label = f"{key[0]} {key[1]} sf={key[2]}"
        speed = base["wall_ms"] / entry["wall_ms"] if entry["wall_ms"] else 0
        marker = ""
        if base.get("checksum") != entry.get("checksum"):
            marker = "  ! result checksum changed"
            mismatched += 1
        print(
            f"{label:<24}{base['wall_ms']:>12.1f}{entry['wall_ms']:>12.1f}"
            f"{speed:>8.2f}x{marker}"
        )
    if before.get("serve") and after.get("serve"):
        b, a = before["serve"], after["serve"]
        speed = b["wall_ms"] / a["wall_ms"] if a["wall_ms"] else 0
        print(
            f"{'serve drain':<24}{b['wall_ms']:>12.1f}{a['wall_ms']:>12.1f}"
            f"{speed:>8.2f}x"
        )
    if after.get("shard"):
        shard = after["shard"]
        print(
            f"{'shard 1->4 devices':<24}"
            f"{'':>12}{'':>12}{shard.get('sim_speedup', 0):>8.2f}x"
            "  (simulated makespan)"
        )
    workers = after.get("workers")
    if workers:
        serve = workers.get("serve", {})
        widths = sorted(serve, key=int)
        if len(widths) >= 2:
            seq = serve[widths[0]]["wall_ms"]
            par = serve[widths[-1]]["wall_ms"]
            speed = seq / par if par else 0
            print(
                f"{'workers serve 1->' + widths[-1]:<24}"
                f"{seq:>12.1f}{par:>12.1f}{speed:>8.2f}x"
                "  (informational)"
            )
    return 1 if mismatched else 0


def check(baseline_path: str, candidate_path: str) -> int:
    """Gate on correctness invariants only: checksums and sim cycles.

    Wall-clock milliseconds vary with the machine and are deliberately
    ignored — this is the CI-safe comparison.  Overlapping
    (query, engine, scale) entries must agree on the result checksum,
    the row count, and the simulated cycle count; any drift exits 1.
    """
    baseline = json.loads(pathlib.Path(baseline_path).read_text())
    candidate = json.loads(pathlib.Path(candidate_path).read_text())
    by_key = {
        (e["query"], e["engine"], e["scale"]): e
        for e in baseline.get("entries", [])
    }
    compared = 0
    failures = []
    for entry in candidate.get("entries", []):
        key = (entry["query"], entry["engine"], entry["scale"])
        base = by_key.get(key)
        if base is None:
            continue
        compared += 1
        label = f"{key[0]} {key[1]} sf={key[2]}"
        for field in ("checksum", "rows", "sim_cycles"):
            if base.get(field) != entry.get(field):
                failures.append(
                    f"{label}: {field} {base.get(field)!r} -> "
                    f"{entry.get(field)!r}"
                )
    shard = candidate.get("shard")
    if shard is not None:
        compared += 1
        if not shard.get("checksums_match"):
            failures.append(
                "shard: per-query checksums diverge between pool sizes "
                f"{list(shard.get('configs', {}))}"
            )
        base_shard = baseline.get("shard") or {}
        for devices, config in sorted(shard.get("configs", {}).items()):
            base_config = base_shard.get("configs", {}).get(devices)
            if base_config is None:
                continue
            if base_config.get("checksums") != config.get("checksums"):
                failures.append(
                    f"shard x{devices}: checksums "
                    f"{base_config.get('checksums')!r} -> "
                    f"{config.get('checksums')!r}"
                )
    cache = candidate.get("cache")
    if cache is not None:
        compared += 1
        if not cache.get("checksums_match"):
            failures.append(
                "cache: per-ticket checksums diverge between the cold "
                "and hot drains"
            )
        if cache.get("speedup", 0.0) < 2.0:
            failures.append(
                f"cache: hot drain only {cache.get('speedup')}x faster "
                "than cold (gate: >= 2x — hot hits skip execution "
                "entirely, so this holds on any machine)"
            )
        dedupe = cache.get("dedupe", {})
        if dedupe.get("executed") != 1:
            failures.append(
                f"cache: dedupe round executed {dedupe.get('executed')} "
                f"of {dedupe.get('queries')} identical queries "
                "(expected exactly 1)"
            )
        if not dedupe.get("rows_correct"):
            failures.append(
                "cache: deduped queries returned divergent rows"
            )
        base_cache = baseline.get("cache") or {}
        if (
            base_cache.get("checksums")
            and base_cache.get("checksums") != cache.get("checksums")
        ):
            failures.append(
                f"cache: checksums {base_cache.get('checksums')!r} -> "
                f"{cache.get('checksums')!r}"
            )
    workers = candidate.get("workers")
    if workers is not None:
        compared += 1
        if not workers.get("checksums_match"):
            failures.append(
                "workers: checksums or simulated cycles diverge between "
                f"worker widths {list(workers.get('serve', {}))}"
            )
        base_workers = baseline.get("workers") or {}
        for site in ("serve", "shard"):
            for width, config in sorted(workers.get(site, {}).items()):
                base_config = base_workers.get(site, {}).get(width)
                if base_config is None:
                    continue
                if base_config.get("checksums") != config.get("checksums"):
                    failures.append(
                        f"workers {site} x{width}: checksums "
                        f"{base_config.get('checksums')!r} -> "
                        f"{config.get('checksums')!r}"
                    )
    if not compared:
        print(
            f"no overlapping entries between {baseline_path} and "
            f"{candidate_path}"
        )
        return 1
    if failures:
        print(f"bench invariant drift ({len(failures)}):")
        for failure in failures:
            print("  " + failure)
        return 1
    print(
        f"bench invariants hold: {compared} entries agree on "
        "checksum/rows/sim_cycles (wall-clock not compared)"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI parser (importable so the docs lint can verify flags)."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--label",
        default="local",
        help="suffix of the BENCH_<label>.json output file",
    )
    parser.add_argument(
        "--scale",
        type=float,
        action="append",
        help="restrict the scale-factor sweep (repeatable; default 0.1 0.5)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=1,
        help="measurements per entry; the best wall-clock is recorded",
    )
    parser.add_argument(
        "--out-dir",
        default=str(REPO),
        help="directory for the BENCH_<label>.json file",
    )
    parser.add_argument(
        "--diff",
        nargs=2,
        metavar=("BEFORE", "AFTER"),
        help="compare two BENCH files instead of running the suite",
    )
    parser.add_argument(
        "--check",
        nargs=2,
        metavar=("BASELINE", "CANDIDATE"),
        help=(
            "gate on correctness invariants (checksums, rows, simulated "
            "cycles) between two BENCH files; wall-clock is ignored, so "
            "this comparison is machine-independent and CI-safe"
        ),
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.diff:
        return diff(*args.diff)
    if args.check:
        return check(*args.check)

    import numpy

    scales = tuple(args.scale) if args.scale else DEFAULT_SCALES
    print(f"bench suite: scales {scales}, label {args.label!r}")
    started = time.perf_counter()
    payload = run_suite(scales, args.repeats)
    payload["meta"] = {
        "label": args.label,
        "git_rev": _git_rev(),
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "platform": platform.platform(),
        "total_seconds": round(time.perf_counter() - started, 2),
    }
    out = pathlib.Path(args.out_dir) / f"BENCH_{args.label}.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
