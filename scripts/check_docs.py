#!/usr/bin/env python
"""Docs lint: catch broken links and stale references.

Six checks over every tracked markdown file:

1. **intra-repo links** — every relative ``[text](target)`` must point
   at a file or directory that exists (anchors are stripped; external
   ``http(s):``/``mailto:`` links are ignored);
2. **module references** — every backticked ``repro.foo.bar`` dotted
   path must resolve to a real module, package, or attribute, so docs
   cannot name code that was renamed or removed;
3. **CLI flags** — every ``--flag`` a doc attributes to a ``python -m
   repro <command>`` context must be accepted by that command's parser,
   and every ``--flag`` on a line mentioning ``bench.py`` or
   ``soak.py`` must be accepted by that script's parser, so flag
   renames cannot strand the docs;
4. **metric catalogue** — the table under ``## Metrics catalogue`` in
   ``docs/observability.md`` must list exactly the metric names in
   ``repro.obs.metric_catalogue()``: a documented metric missing from
   the catalogue is stale, a catalogue metric missing from the docs is
   undocumented, and both fail;
5. **undocumented flags** — the reverse of check 3 for the flags in
   ``MUST_DOCUMENT_FLAGS`` (the ``--devices`` pool flag, the serve
   caching/batching flags ``--result-cache-bytes``,
   ``--no-result-cache``, ``--batch-dedupe``, the host-parallelism
   flag ``--workers``, and the failure-domain flags
   ``--max-relocations`` / ``--quarantine-threshold``): every command
   whose
   parser accepts such a flag must have at least one doc line
   attributing the flag to that command, so a new flag cannot ship
   without documentation;
6. **reachability** — every ``docs/*.md`` page must be reachable by
   following relative links from ``docs/README.md``, so a page cannot
   be orphaned from the index.

Exit code 0 when clean, 1 with one line per problem otherwise.  Run
from the repository root (CI does); no arguments.
"""

from __future__ import annotations

import importlib
import importlib.util
import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

# Work-tracking files may reference planned-but-unbuilt code and flags;
# the lint covers documentation of what exists.
SKIP_FILES = {"ISSUE.md", "CHANGES.md"}

DOC_FILES = sorted(
    path
    for path in list(REPO.glob("*.md")) + list((REPO / "docs").glob("*.md"))
    if path.name not in SKIP_FILES
)

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
MODULE_RE = re.compile(r"`(repro(?:\.\w+)+)")
# A --flag mentioned in prose or code fences.  Only flags that also
# appear near a recognizable command name are attributed to it.
FLAG_RE = re.compile(r"(--[a-z][a-z0-9-]+)")
COMMAND_RE = re.compile(
    r"\b(run|serve|compare|workload|calibrate|tune|explain|trace|obs|dbgen)\b"
)

OBSERVABILITY_DOC = REPO / "docs" / "observability.md"
CATALOGUE_HEADING = "## Metrics catalogue"
METRIC_ROW_RE = re.compile(r"^\|\s*`([a-z][a-z0-9_]*)`")

# Flags that belong to the docs' own tooling examples, not the repro CLI.
FOREIGN_FLAGS = {"--benchmark-only"}

BENCH_SCRIPT = REPO / "scripts" / "bench.py"
SOAK_SCRIPT = REPO / "scripts" / "soak.py"

# Check 5: flags that MUST be documented on every command whose parser
# accepts them.  Extend this set when a new cross-cutting flag lands.
MUST_DOCUMENT_FLAGS = {
    "--devices",
    "--result-cache-bytes",
    "--no-result-cache",
    "--batch-dedupe",
    "--workers",
    "--max-relocations",
    "--quarantine-threshold",
}

DOCS_INDEX = REPO / "docs" / "README.md"


def _script_flags(script_path):
    """Option strings accepted by a script's importable ``build_parser``."""
    spec = importlib.util.spec_from_file_location(
        f"_{script_path.stem}", script_path
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return {
        option
        for action in module.build_parser()._actions
        for option in action.option_strings
    }


def iter_problems():
    from repro.__main__ import build_parser
    import argparse

    parser = build_parser()
    subparsers = next(
        action
        for action in parser._actions
        if isinstance(action, argparse._SubParsersAction)
    )
    flags_by_command = {
        name: {
            option
            for action in sub._actions
            for option in action.option_strings
        }
        for name, sub in subparsers.choices.items()
    }
    script_flags = {
        "bench.py": _script_flags(BENCH_SCRIPT),
        "soak.py": _script_flags(SOAK_SCRIPT),
    }
    # (command, flag) pairs the docs attribute somewhere — fed into
    # check 5 after the per-file sweep.
    documented_pairs = set()

    for path in DOC_FILES:
        text = path.read_text()
        rel = path.relative_to(REPO)

        # 1. intra-repo links
        for match in LINK_RE.finditer(text):
            target = match.group(1).split("#", 1)[0]
            if not target or ":" in target:
                continue  # pure anchor or external URL
            if not (path.parent / target).exists():
                yield f"{rel}: broken link -> {match.group(1)}"

        # 2. module references
        for match in MODULE_RE.finditer(text):
            dotted = match.group(1)
            if _resolves(dotted):
                continue
            yield f"{rel}: unresolved module reference `{dotted}`"

        # 3. CLI flags, attributed line-by-line to the nearest command
        for line in text.splitlines():
            flags = set(FLAG_RE.findall(line)) - FOREIGN_FLAGS
            if not flags:
                continue
            script = next(
                (name for name in script_flags if name in line), None
            )
            if script is not None:
                # Lines about the bench/soak harnesses are checked
                # against their own parsers, not the repro CLI.
                for flag in sorted(flags - script_flags[script]):
                    yield (
                        f"{rel}: flag {flag} not accepted by "
                        f"scripts/{script}"
                    )
                continue
            commands = set(COMMAND_RE.findall(line)) & set(flags_by_command)
            if not commands:
                continue  # flag with no command context on the line
            for flag in flags:
                if not any(
                    flag in flags_by_command[cmd] for cmd in commands
                ):
                    yield (
                        f"{rel}: flag {flag} not accepted by "
                        f"{'/'.join(sorted(commands))}"
                    )
                for cmd in commands:
                    if flag in flags_by_command[cmd]:
                        documented_pairs.add((cmd, flag))

    # 4. metric catalogue <-> docs/observability.md, both directions
    yield from _catalogue_problems()

    # 5. must-document flags: every command accepting one needs a doc
    # line attributing that flag to it (the reverse of check 3)
    for flag in sorted(MUST_DOCUMENT_FLAGS):
        for cmd in sorted(flags_by_command):
            if flag in flags_by_command[cmd] and (cmd, flag) not in (
                documented_pairs
            ):
                yield (
                    f"docs: flag {flag} accepted by `{cmd}` is never "
                    f"documented for it"
                )

    # 6. every docs/*.md page reachable from the docs index
    yield from _reachability_problems()


def _reachability_problems():
    """BFS the relative links from docs/README.md; flag orphan pages."""
    rel_index = DOCS_INDEX.relative_to(REPO)
    if not DOCS_INDEX.exists():
        yield f"{rel_index}: missing (docs index)"
        return
    reachable = {DOCS_INDEX.resolve()}
    frontier = [DOCS_INDEX]
    while frontier:
        page = frontier.pop()
        for match in LINK_RE.finditer(page.read_text()):
            target = match.group(1).split("#", 1)[0]
            if not target or ":" in target:
                continue
            resolved = (page.parent / target).resolve()
            if (
                resolved.suffix == ".md"
                and resolved.exists()
                and resolved not in reachable
            ):
                reachable.add(resolved)
                frontier.append(resolved)
    for path in sorted((REPO / "docs").glob("*.md")):
        if path.resolve() not in reachable:
            yield (
                f"{path.relative_to(REPO)}: not reachable by links "
                f"from {rel_index}"
            )


def _catalogue_problems():
    from repro.obs import metric_catalogue

    rel = OBSERVABILITY_DOC.relative_to(REPO)
    if not OBSERVABILITY_DOC.exists():
        yield f"{rel}: missing (metric catalogue documentation)"
        return
    documented = set()
    in_section = False
    for line in OBSERVABILITY_DOC.read_text().splitlines():
        if line.startswith("## "):
            in_section = line.strip() == CATALOGUE_HEADING
            continue
        if in_section:
            match = METRIC_ROW_RE.match(line)
            if match:
                documented.add(match.group(1))
    if not documented:
        yield f"{rel}: no metric table under {CATALOGUE_HEADING!r}"
        return
    catalogued = {spec.name for spec in metric_catalogue()}
    for name in sorted(documented - catalogued):
        yield f"{rel}: documented metric `{name}` is not in the catalogue"
    for name in sorted(catalogued - documented):
        yield f"{rel}: catalogue metric `{name}` is undocumented"


def _resolves(dotted: str) -> bool:
    """True if ``dotted`` is an importable module or module attribute."""
    parts = dotted.split(".")
    for split in range(len(parts), 0, -1):
        module_name = ".".join(parts[:split])
        try:
            obj = importlib.import_module(module_name)
        except ImportError:
            continue
        for attr in parts[split:]:
            obj = getattr(obj, attr, None)
            if obj is None:
                return False
        return True
    return False


def main() -> int:
    problems = list(iter_problems())
    for problem in problems:
        print(problem)
    if problems:
        print(f"check_docs: {len(problems)} problem(s)")
        return 1
    print(f"check_docs: {len(DOC_FILES)} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
