"""Ablation: how much of GPL's win comes from concurrent kernel slots?

The paper compares C=2 (AMD) against C=16 (NVIDIA) implicitly through
devices; this ablation isolates C on otherwise-identical hardware.
Expected: execution time improves from C=1 to C=2 and saturates — a
linear pipeline's overlap is bounded by its bottleneck stage, so extra
slots beyond a few help little.
"""

import pytest

from repro.core import GPLEngine
from repro.gpu import AMD_A10
from repro.tpch import generate_database, q8

CONCURRENCY_LEVELS = (1, 2, 4, 8)


@pytest.fixture(scope="module")
def sweep():
    database = generate_database(scale=0.1)
    times = {}
    for concurrency in CONCURRENCY_LEVELS:
        device = AMD_A10.with_overrides(concurrency=concurrency)
        times[concurrency] = GPLEngine(database, device).execute(
            q8()
        ).elapsed_ms
    return times


def test_ablation_concurrency(benchmark, sweep, report):
    times = benchmark.pedantic(lambda: sweep, rounds=1, iterations=1)
    report(
        "ablation_concurrency",
        "Q8 GPL time vs concurrent-kernel slots (AMD, scale 0.1):\n"
        + "\n".join(
            f"  C={c:<3} {times[c]:8.3f} ms" for c in CONCURRENCY_LEVELS
        ),
    )
    # More slots never hurt...
    assert times[2] <= times[1] * 1.001
    assert times[8] <= times[2] * 1.001
    # ...and the step from 1 to 2 is where most of the benefit lives.
    gain_1_to_2 = times[1] - times[2]
    gain_2_to_8 = times[2] - times[8]
    assert gain_1_to_2 >= gain_2_to_8
