"""Ablation: Ocelot's hash-table cache on a repeated workload.

Section 5.5 credits Ocelot's competitiveness partly to MonetDB's memory
manager keeping previously built hash tables.  This ablation runs the
whole five-query workload twice on one engine instance: the second pass
skips every repeated build.
"""

import pytest

from repro.ocelot import OcelotEngine
from repro.gpu import AMD_A10
from repro.tpch import generate_database, query_by_name

QUERIES = ("Q5", "Q7", "Q8", "Q9", "Q14")


@pytest.fixture(scope="module")
def passes():
    database = generate_database(scale=0.05)
    engine = OcelotEngine(database, AMD_A10)

    def run_workload():
        return sum(
            engine.execute(query_by_name(name)).elapsed_ms
            for name in QUERIES
        )

    cold = run_workload()
    warm = run_workload()
    return cold, warm


def test_ablation_ht_cache(benchmark, passes, report):
    cold, warm = benchmark.pedantic(lambda: passes, rounds=1, iterations=1)
    report(
        "ablation_ht_cache",
        "\n".join(
            [
                "Ocelot five-query workload, hash-table cache ablation:",
                f"  cold pass (builds everything) {cold:8.2f} ms",
                f"  warm pass (cache hits)        {warm:8.2f} ms",
                f"  saved: {(1 - warm / cold) * 100:.0f}%",
            ]
        ),
    )
    assert warm < cold
    # Builds are a minority of total work; the saving is real but bounded.
    assert 0.02 < 1 - warm / cold < 0.8
