"""Fig 20: query execution time breakdown for Q8 on AMD.

Expected shape: KBE's communication cost (memory stalls) is a large
share of execution (paper: up to 34%); in GPL the communication total
(Mem + DC + Delay) is substantially smaller relative to useful work
(paper: up to 14%... the simulation keeps the ordering, not the exact
percentages).
"""

from repro.bench import banner, exp_fig20_breakdown, format_table


def test_fig20_breakdown(benchmark, amd, report):
    result = benchmark.pedantic(
        lambda: exp_fig20_breakdown(amd), rounds=1, iterations=1
    )
    categories = ["Compute", "Mem_cost", "DC_cost", "Delay"]
    report(
        "fig20_breakdown",
        banner("Fig 20: Q8 execution-time breakdown (AMD)")
        + "\n"
        + format_table(
            ["engine"] + categories + ["communication share"],
            [
                [engine]
                + [round(result[engine][c], 3) for c in categories]
                + [round(result[engine]["communication_share"], 3)]
                for engine in ("KBE", "GPL")
            ],
        ),
    )
    assert result["KBE"]["DC_cost"] == 0.0  # no channels in KBE
    assert result["KBE"]["Delay"] == 0.0  # no pipeline in KBE
    assert result["GPL"]["DC_cost"] > 0.0
    # GPL turns communication into compute: its compute share is larger.
    assert result["GPL"]["Compute"] > result["KBE"]["Compute"]
