"""Ablation: simple vs partitioned hash joins (paper Section 3.2).

The paper notes partitioned hash joins can be implemented with a
non-blocking partition phase.  This ablation quantifies the trade on the
simulated device: partitioning bounds the probe's auxiliary working set
(fewer memory stalls on large hash tables) at the price of an extra
pipeline stage per partitioned join.
"""

import pytest

from repro.core import GPLEngine
from repro.gpu import AMD_A10
from repro.tpch import generate_database, q9

SCALE = 0.3


@pytest.fixture(scope="module")
def runs():
    database = generate_database(scale=SCALE)
    plain = GPLEngine(database, AMD_A10).execute(q9())
    partitioned = GPLEngine(
        database, AMD_A10, partitioned_joins=True, num_partitions=16
    ).execute(q9())
    return plain, partitioned


def test_ablation_partitioned_join(benchmark, runs, report):
    plain, partitioned = benchmark.pedantic(
        lambda: runs, rounds=1, iterations=1
    )
    report(
        "ablation_partitioned_join",
        "\n".join(
            [
                f"Q9 at scale {SCALE} on AMD:",
                f"  plain       {plain.elapsed_ms:8.2f} ms  "
                f"stall cycles {plain.counters.stall_cycles / 1e6:.2f}M",
                f"  partitioned {partitioned.elapsed_ms:8.2f} ms  "
                f"stall cycles {partitioned.counters.stall_cycles / 1e6:.2f}M",
                "mechanism: partitioning trims memory stalls; the extra "
                "partition pass costs compute/channel time — net effect "
                "depends on how badly the probes thrash.",
            ]
        ),
    )
    # Answers agree.
    assert plain.approx_equals(partitioned)
    # The mechanism: partition-local probes stall less on memory.
    assert (
        partitioned.counters.stall_cycles < plain.counters.stall_cycles
    )
    # The cost: extra kernels were launched for the partition stages.
    assert (
        partitioned.counters.kernel_launches
        > plain.counters.kernel_launches
    )
