"""Fig 13: relative error in estimating GPL runtime vs tile size (Q8).

Expected shape: the model tracks the measured tile-size curve with small
relative errors across the whole 256KB–16MB sweep.
"""

import pytest

from repro.bench import ExperimentContext, banner, exp_fig12_13_tile_sweep, format_table
from repro.gpu import AMD_A10

SWEEP_SCALE = 0.3


@pytest.fixture(scope="module")
def sweep():
    context = ExperimentContext(device=AMD_A10, scale=SWEEP_SCALE)
    return exp_fig12_13_tile_sweep(context)


def test_fig13_tile_size_error(benchmark, sweep, report):
    result = benchmark.pedantic(lambda: sweep, rounds=1, iterations=1)
    rows = result["rows"]
    report(
        "fig13_tile_size_error",
        banner("Fig 13: model relative error vs tile size (Q8, AMD)")
        + "\n"
        + format_table(
            ["tile", "relative error"],
            [
                [f"{row['tile_bytes'] // 1024}KB", round(row["relative_error"], 3)]
                for row in rows
            ],
        ),
    )
    errors = [row["relative_error"] for row in rows]
    assert all(error < 0.4 for error in errors)
    assert sum(errors) / len(errors) < 0.2
