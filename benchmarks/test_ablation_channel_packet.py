"""Ablation: end-to-end effect of the channel packet size (AMD).

The paper fixes 16-byte packets after calibration ("achieves the best
efficiency in most scenarios").  This ablation confirms the end-to-end
query-level effect: tiny packets pay per-packet overhead, huge packets
pay register spilling, and the 16–64 B region is near-optimal.
"""

import pytest

from repro.core import GPLConfig, GPLEngine
from repro.gpu import AMD_A10, ChannelConfig
from repro.tpch import generate_database, q14

PACKET_SIZES = (4, 16, 64, 512)


@pytest.fixture(scope="module")
def sweep():
    database = generate_database(scale=0.1)
    times = {}
    for packet_bytes in PACKET_SIZES:
        config = GPLConfig(
            channel=ChannelConfig(num_channels=8, packet_bytes=packet_bytes)
        )
        times[packet_bytes] = GPLEngine(database, AMD_A10, config).execute(
            q14(selectivity=0.5)
        ).elapsed_ms
    return times


def test_ablation_channel_packet(benchmark, sweep, report):
    times = benchmark.pedantic(lambda: sweep, rounds=1, iterations=1)
    report(
        "ablation_channel_packet",
        "Q14 (50% selectivity) GPL time vs packet size (AMD, scale 0.1):\n"
        + "\n".join(
            f"  p={p:<4}B {times[p]:8.3f} ms" for p in PACKET_SIZES
        ),
    )
    best = min(times.values())
    # The paper's 16 B choice is at or near the optimum...
    assert times[16] <= best * 1.05
    # ...and both extremes are worse than the middle.
    assert times[4] > times[16]
    assert times[512] > times[64]
