"""Serving throughput: concurrent scheduling + cache warm-up.

Not a paper figure — this measures the serving layer added on top of
the reproduction.  Two claims are checked:

* **overlap**: scheduling a 10-query trace concurrently yields a
  simulated makespan well below the sum of the per-query execution
  times (the sequential baseline);
* **caches**: a warm service (plan cache + Γ table + configuration
  search memo populated) replays the same trace at least 2x faster in
  wall-clock time than a cold one, with bit-identical query results.
"""

import time

import pytest

from repro.gpu import AMD_A10
from repro.model import clear_calibration_cache, clear_search_cache
from repro.serve import QueryService
from repro.tpch import generate_database, q5, q7, q8, q9, q14

SCALE = 0.002
REPEAT = 2  # 5 distinct shapes x 2 = 10 queries per replay


@pytest.fixture(scope="module")
def replay():
    trace = [q5(), q7(), q8(), q9(), q14()] * REPEAT
    clear_calibration_cache()
    clear_search_cache()
    database = generate_database(scale=SCALE)
    service = QueryService(
        database, AMD_A10, policy="sjf", max_concurrent=8
    )

    start = time.perf_counter()
    cold = service.run(trace)
    cold_seconds = time.perf_counter() - start
    cold_rows = [
        service.result_for(ticket).sorted_rows()
        for ticket in range(len(trace))
    ]

    start = time.perf_counter()
    warm = service.run(trace)
    warm_seconds = time.perf_counter() - start
    warm_rows = [
        service.result_for(len(trace) + ticket).sorted_rows()
        for ticket in range(len(trace))
    ]

    return {
        "trace_len": len(trace),
        "cold": cold,
        "warm": warm,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "cold_rows": cold_rows,
        "warm_rows": warm_rows,
    }


def test_serving_throughput(benchmark, replay, report):
    data = benchmark.pedantic(lambda: replay, rounds=1, iterations=1)
    cold, warm = data["cold"], data["warm"]
    speedup = data["cold_seconds"] / data["warm_seconds"]
    report(
        "serving_throughput",
        f"Serving {data['trace_len']} queries (sjf, 8 concurrent, "
        f"AMD, scale {SCALE}):\n"
        f"  simulated makespan {cold.makespan_ms:8.3f} ms vs "
        f"sequential {cold.sequential_ms:8.3f} ms "
        f"({cold.sequential_ms / cold.makespan_ms:.2f}x overlap)\n"
        f"  throughput {cold.throughput_qps:8.1f} q/s | "
        f"p50 {cold.p50_latency_ms:.3f} ms, p95 {cold.p95_latency_ms:.3f} ms\n"
        f"  cold wall {data['cold_seconds']:8.3f} s "
        f"(plan cache {cold.plan_cache['misses']} misses)\n"
        f"  warm wall {data['warm_seconds']:8.3f} s "
        f"(plan cache {warm.plan_cache['hits']} hits, "
        f"{warm.plan_cache['misses']} misses) -> {speedup:.1f}x",
    )
    # Every query answered, both replays.
    assert cold.completed == data["trace_len"]
    assert warm.completed == data["trace_len"]
    # Concurrent rounds beat the no-overlap baseline.
    assert cold.makespan_ms < cold.sequential_ms
    # The warm replay re-plans nothing...
    assert warm.plan_cache["misses"] == 0
    assert warm.calibration_cache["misses"] == 0
    # ...which is worth at least 2x in wall-clock time...
    assert data["warm_seconds"] * 2 <= data["cold_seconds"]
    # ...without changing a single row.
    assert data["cold_rows"] == data["warm_rows"]
