"""Figs 25+26 (Appendix A.3.1): tile-size sweep for Q8 on NVIDIA.

Same protocol as Figs 12+13: the runtime curve is a U, the model's
chosen tile lands near the measured bottom, and the relative error stays
small across the sweep.
"""

import pytest

from repro.bench import ExperimentContext, banner, exp_fig12_13_tile_sweep, format_table
from repro.gpu import NVIDIA_K40

SWEEP_SCALE = 0.3


@pytest.fixture(scope="module")
def sweep():
    context = ExperimentContext(device=NVIDIA_K40, scale=SWEEP_SCALE)
    return exp_fig12_13_tile_sweep(context)


def test_fig25_26_tile_nvidia(benchmark, sweep, report):
    result = benchmark.pedantic(lambda: sweep, rounds=1, iterations=1)
    rows = result["rows"]
    report(
        "fig25_26_tile_nvidia",
        banner("Figs 25/26: Q8 vs tile size (NVIDIA), normalized to 256KB")
        + "\n"
        + format_table(
            ["tile", "normalized time", "relative error"],
            [
                [
                    f"{row['tile_bytes'] // 1024}KB",
                    round(row["normalized_time"], 3),
                    round(row["relative_error"], 3),
                ]
                for row in rows
            ],
        )
        + f"\nmodel pick (star): {result['model_tile_bytes'] // 1024}KB"
        + f"\nmeasured best:     {result['measured_best_tile_bytes'] // 1024}KB",
    )
    errors = [row["relative_error"] for row in rows]
    # The model underestimates most at oversized tiles on the K40's small
    # cache (see EXPERIMENTS.md); the error bound is looser than Fig 13's.
    assert all(error < 0.65 for error in errors)
    assert sum(errors) / len(errors) < 0.4
    times = [row["normalized_time"] for row in rows]
    model_row = next(
        row for row in rows if row["tile_bytes"] == result["model_tile_bytes"]
    )
    assert model_row["normalized_time"] <= min(times) * 1.45
