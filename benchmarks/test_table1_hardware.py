"""Table 1: hardware specification of the two simulated devices."""

from repro.bench import banner, exp_table1_hardware, format_table


def test_table1_hardware(benchmark, report):
    result = benchmark.pedantic(
        exp_table1_hardware, rounds=1, iterations=1
    )
    fields = list(result["AMD"])
    rows = [
        [field, result["AMD"][field], result["NVIDIA"][field]]
        for field in fields
    ]
    report(
        "table1_hardware",
        banner("Table 1: Hardware specification")
        + "\n"
        + format_table(["", "AMD", "NVIDIA"], rows),
    )
    # The paper's headline numbers.
    assert result["AMD"]["#CU"] == 8
    assert result["NVIDIA"]["#CU"] == 15
    assert result["AMD"]["Concurrent kernels"] == 2
    assert result["NVIDIA"]["Concurrent kernels"] == 16
    assert result["AMD"]["Programming API"] == "OpenCL"
    assert result["NVIDIA"]["Programming API"] == "CUDA"
