"""Fig 19: improved GPU resource utilization under GPL (AMD).

Expected shape: GPL sustains steadier, better-balanced utilization than
KBE — concurrent kernels with different compute/memory mixes keep both
units busy, so the VALU/memory imbalance shrinks.
"""

from repro.bench import banner, exp_fig19_utilization, format_table


def test_fig19_utilization(benchmark, amd, report):
    result = benchmark.pedantic(
        lambda: exp_fig19_utilization(amd), rounds=1, iterations=1
    )
    report(
        "fig19_utilization",
        banner("Fig 19: resource utilization, KBE vs GPL (AMD)")
        + "\n"
        + format_table(
            ["query", "KBE VALU", "KBE Mem", "GPL VALU", "GPL Mem"],
            [
                [
                    name,
                    round(row["KBE_valu"], 3),
                    round(row["KBE_mem"], 3),
                    round(row["GPL_valu"], 3),
                    round(row["GPL_mem"], 3),
                ]
                for name, row in result.items()
            ],
        ),
    )
    kbe_imbalance = sum(
        abs(row["KBE_valu"] - row["KBE_mem"]) for row in result.values()
    )
    gpl_imbalance = sum(
        abs(row["GPL_valu"] - row["GPL_mem"]) for row in result.values()
    )
    assert gpl_imbalance < kbe_imbalance, "GPL balances the two units better"
