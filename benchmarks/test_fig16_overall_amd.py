"""Fig 16: KBE vs GPL (w/o CE) vs GPL on the AMD preset.

Expected shapes: GPL (model-configured) beats KBE on every query, with
improvements in the tens of percent (paper: up to 48%); the w/o-CE
variant loses GPL's advantage (at realistic tile counts it degrades to
or below KBE, paper: up to 31% slower).
"""

from repro.bench import banner, exp_fig16_overall, format_table


def test_fig16_overall_amd(benchmark, amd, report):
    result = benchmark.pedantic(
        lambda: exp_fig16_overall(amd), rounds=1, iterations=1
    )
    report(
        "fig16_overall_amd",
        banner("Fig 16: KBE vs GPL(w/o CE) vs GPL on AMD (normalized to KBE)")
        + "\n"
        + format_table(
            ["query", "KBE ms", "w/o CE norm", "GPL norm", "improvement"],
            [
                [
                    name,
                    round(row["KBE_ms"], 2),
                    round(row["GPL_woCE_normalized"], 3),
                    round(row["GPL_normalized"], 3),
                    f"{row['improvement'] * 100:.0f}%",
                ]
                for name, row in result.items()
            ],
        ),
    )
    for name, row in result.items():
        assert row["GPL_normalized"] < 1.0, f"{name}: GPL must beat KBE"
        assert row["improvement"] > 0.15, f"{name}: improvement too small"
        # w/o CE forfeits most of GPL's advantage.
        assert row["GPL_woCE_normalized"] > row["GPL_normalized"]
    best = max(row["improvement"] for row in result.values())
    assert 0.3 < best < 0.8  # paper: up to 48%
