"""Fig 27 (Appendix A.3.2): GPL vs KBE, normalized, on NVIDIA.

Expected shapes: GPL beats KBE on every query (paper: by up to 50% on
NVIDIA — more concurrency than AMD); tiling without concurrent kernel
execution degrades (paper: up to 1.15x KBE's time).
"""

from repro.bench import banner, exp_fig16_overall, format_table


def test_fig27_overall_nvidia(benchmark, nvidia, report):
    result = benchmark.pedantic(
        lambda: exp_fig16_overall(nvidia), rounds=1, iterations=1
    )
    report(
        "fig27_overall_nvidia",
        banner("Fig 27: GPL execution time normalized to KBE (NVIDIA)")
        + "\n"
        + format_table(
            ["query", "KBE ms", "w/o CE norm", "GPL norm", "improvement"],
            [
                [
                    name,
                    round(row["KBE_ms"], 2),
                    round(row["GPL_woCE_normalized"], 3),
                    round(row["GPL_normalized"], 3),
                    f"{row['improvement'] * 100:.0f}%",
                ]
                for name, row in result.items()
            ],
        ),
    )
    for name, row in result.items():
        assert row["GPL_normalized"] < 1.0, f"{name}: GPL must beat KBE"
        assert row["GPL_woCE_normalized"] > row["GPL_normalized"]
    best = max(row["improvement"] for row in result.values())
    assert best > 0.3  # paper: up to 50% on NVIDIA
