"""Fig 5: low utilization of GPU resources in KBE query execution (AMD).

Expected shape: neither VALUBusy nor MemUnitBusy comes close to full
utilization, and the two are imbalanced (kernels are alternately
compute- or memory-bound, so one unit idles while the other works).
"""

from repro.bench import banner, exp_fig5_kbe_utilization, format_table


def test_fig05_kbe_utilization(benchmark, amd, report):
    result = benchmark.pedantic(
        lambda: exp_fig5_kbe_utilization(amd), rounds=1, iterations=1
    )
    report(
        "fig05_kbe_utilization",
        banner("Fig 5: KBE resource utilization on AMD")
        + "\n"
        + format_table(
            ["query", "VALUBusy", "MemUnitBusy"],
            [
                [name, round(v, 3), round(m, 3)]
                for name, (v, m) in result.items()
            ],
        ),
    )
    for name, (valu, mem) in result.items():
        assert valu < 0.6, f"{name}: VALU should be underutilized in KBE"
        assert mem < 0.98, f"{name}: memory unit never saturates fully"
        # Imbalance between the two units.
        assert abs(valu - mem) > 0.1, f"{name}: units should be imbalanced"
