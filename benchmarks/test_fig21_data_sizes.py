"""Fig 21: query execution time on varying data sizes (AMD).

Expected shape: both engines grow with the scale factor, KBE grows
faster, and GPL's improvement over KBE widens as the data grows
("when the data size increases, the performance improvement of GPL over
KBE continues to increase").
"""

from repro.bench import banner, exp_fig21_data_sizes, format_table


def test_fig21_data_sizes(benchmark, amd, report):
    rows = benchmark.pedantic(
        lambda: exp_fig21_data_sizes(amd), rounds=1, iterations=1
    )
    report(
        "fig21_data_sizes",
        banner("Fig 21: execution time vs data size (Q8, AMD)")
        + "\n"
        + format_table(
            ["scale", "KBE ms", "GPL ms", "improvement"],
            [
                [
                    row["scale"],
                    round(row["KBE_ms"], 2),
                    round(row["GPL_ms"], 2),
                    f"{row['improvement'] * 100:.0f}%",
                ]
                for row in rows
            ],
        ),
    )
    kbe = [row["KBE_ms"] for row in rows]
    gpl = [row["GPL_ms"] for row in rows]
    assert all(b > a for a, b in zip(kbe, kbe[1:]))  # KBE grows with SF
    assert all(b > a for a, b in zip(gpl, gpl[1:]))  # GPL grows with SF
    assert all(g < k for g, k in zip(gpl, kbe))  # GPL wins throughout
    # The improvement at the largest size exceeds the smallest size's.
    assert rows[-1]["improvement"] > rows[0]["improvement"]
