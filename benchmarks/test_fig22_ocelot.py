"""Fig 22: query execution time for GPL and Ocelot (AMD).

Expected shape: GPL is comparable to or better than Ocelot overall, and
*significantly* better on the join-deep Q8 and Q9, where Ocelot's
kernel-based probes cannot pipeline (Section 5.5).  The paper's SF
1/5/10 maps to this harness's reduced scales.
"""

from repro.bench import banner, exp_fig22_ocelot, format_table

SCALES = (0.02, 0.05, 0.1)


def test_fig22_ocelot(benchmark, amd, report):
    result = benchmark.pedantic(
        lambda: exp_fig22_ocelot(amd, scales=SCALES), rounds=1, iterations=1
    )
    lines = [banner("Fig 22: GPL vs Ocelot (AMD)")]
    for scale in SCALES:
        lines.append(f"\nscale factor {scale}:")
        lines.append(
            format_table(
                ["query", "GPL ms", "Ocelot ms", "GPL / Ocelot"],
                [
                    [
                        name,
                        round(row["GPL_ms"], 2),
                        round(row["Ocelot_ms"], 2),
                        round(row["GPL_over_Ocelot"], 3),
                    ]
                    for name, row in result[scale].items()
                ],
            )
        )
    report("fig22_ocelot", "\n".join(lines))

    largest = result[SCALES[-1]]
    # GPL is comparable-or-better across the board at the largest scale
    # ("comparable" swings both ways on selection-dominated queries,
    # where Ocelot's bitmaps shine — Q14 here, as in the paper's Fig 22).
    for name, row in largest.items():
        assert row["GPL_over_Ocelot"] < 1.6, f"{name}: GPL should not lose badly"
    # And significantly better on the join-deep queries.
    assert largest["Q8"]["GPL_over_Ocelot"] < 0.8
    assert largest["Q9"]["GPL_over_Ocelot"] < 0.8
