"""Operator microbenchmarks: where does GPL's win come from?

Section 2.2 frames KBE's pitfalls per *operator* (a selection alone is
already three kernels with two materialized intermediates).  These
single-operator queries isolate the per-operator gap: selection
(map+prefix+scatter vs one map), join (three-phase probe vs streaming
probe), and aggregation (materialize + prefix scan vs packet-wise
reduce).
"""

import pytest

from repro.core import GPLEngine
from repro.gpu import AMD_A10
from repro.kbe import KBEEngine
from repro.plans import AggSpec, JoinEdge, QuerySpec, TableRef
from repro.relational import col
from repro.tpch import generate_database

SCALE = 0.1


def selection_only() -> QuerySpec:
    """A single selective filter; count survivors."""
    return QuerySpec(
        name="op_selection",
        tables=(TableRef("lineitem", "lineitem"),),
        join_edges=(),
        fact="lineitem",
        filters={
            "lineitem": col("l_discount").le(0.03)
            & col("l_quantity").lt(25.0)
        },
        aggregates=(AggSpec("n", "count"),),
    )


def join_only() -> QuerySpec:
    """A single PK-FK hash join; count matches."""
    return QuerySpec(
        name="op_join",
        tables=(
            TableRef("lineitem", "lineitem"),
            TableRef("orders", "orders"),
        ),
        join_edges=(
            JoinEdge("lineitem", "l_orderkey", "orders", "o_orderkey"),
        ),
        fact="lineitem",
        aggregates=(AggSpec("n", "count"),),
    )


def aggregation_only() -> QuerySpec:
    """A grouped sum with no filter and no join."""
    return QuerySpec(
        name="op_aggregation",
        tables=(TableRef("lineitem", "lineitem"),),
        join_edges=(),
        fact="lineitem",
        group_keys=("l_suppkey",),
        aggregates=(
            AggSpec("revenue", "sum", col("l_extendedprice")),
        ),
    )


OPERATORS = {
    "selection": selection_only,
    "join": join_only,
    "aggregation": aggregation_only,
}


@pytest.fixture(scope="module")
def results():
    database = generate_database(scale=SCALE)
    kbe = KBEEngine(database, AMD_A10)
    gpl = GPLEngine(database, AMD_A10)
    rows = {}
    for name, factory in OPERATORS.items():
        spec = factory()
        kbe_run = kbe.execute(spec)
        gpl_run = gpl.execute(spec)
        assert kbe_run.approx_equals(gpl_run), name
        rows[name] = {
            "KBE_ms": kbe_run.elapsed_ms,
            "GPL_ms": gpl_run.elapsed_ms,
            "KBE_launches": kbe_run.counters.kernel_launches,
            "GPL_launches": gpl_run.counters.kernel_launches,
            "KBE_materialized": kbe_run.counters.bytes_materialized,
            "GPL_materialized": gpl_run.counters.bytes_materialized,
        }
    return rows


def test_operator_microbench(benchmark, results, report):
    rows = benchmark.pedantic(lambda: results, rounds=1, iterations=1)
    lines = [f"single-operator queries at scale {SCALE} (AMD):"]
    for name, row in rows.items():
        lines.append(
            f"  {name:12s} KBE {row['KBE_ms']:6.2f} ms "
            f"({row['KBE_launches']:>2} launches, "
            f"{row['KBE_materialized'] / 1e6:6.2f} MB)   "
            f"GPL {row['GPL_ms']:6.2f} ms "
            f"({row['GPL_launches']:>2} launches, "
            f"{row['GPL_materialized'] / 1e6:6.2f} MB)   "
            f"{row['KBE_ms'] / row['GPL_ms']:4.2f}x"
        )
    report("operator_microbench", "\n".join(lines))

    for name, row in rows.items():
        # GPL wins on every isolated operator...
        assert row["GPL_ms"] < row["KBE_ms"], name
        # ...launches fewer kernels...
        assert row["GPL_launches"] < row["KBE_launches"], name
        # ...and materializes less.
        assert row["GPL_materialized"] < row["KBE_materialized"], name
    # The selection gap reflects the removed prefix-sum/scatter passes.
    assert rows["selection"]["KBE_ms"] / rows["selection"]["GPL_ms"] > 1.5
