"""Fig 23 (Appendix A.1): kernel-communication throughput on NVIDIA.

Same calibration sweep as Fig 2, on the Tesla K40 preset; the packet
size is fixed (CUDA's DDT mechanism is not user-tunable), so only the
channel count and data size vary.
"""

from repro.bench import banner, exp_fig2_channel_calibration, format_table


def test_fig23_channel_nvidia(benchmark, nvidia, report):
    result = benchmark.pedantic(
        lambda: exp_fig2_channel_calibration(nvidia), rounds=1, iterations=1
    )
    sizes = [n for n, _ in result[1]]
    rows = []
    for index, size in enumerate(sizes):
        rows.append(
            [f"{size // 1024}K ints"]
            + [round(result[n][index][1], 3) for n in sorted(result)]
        )
    report(
        "fig23_channel_nvidia",
        banner("Fig 23: kernel-communication throughput (GB/s) on NVIDIA")
        + "\n"
        + format_table(["N"] + [f"{n} ch" for n in sorted(result)], rows),
    )
    for n, series in result.items():
        throughputs = [value for _, value in series]
        assert throughputs[-1] < max(throughputs)  # large-N degradation
    assert all(b[1] > a[1] for a, b in zip(result[1], result[16]))
