"""Fig 24 (Appendix A.3.1): model relative error on NVIDIA.

Same protocol as Fig 11; "the relative error in the execution time
estimation done by the model is very small for NVIDIA GPU as well".
"""

from repro.bench import banner, exp_fig11_model_error, format_table


def test_fig24_model_error_nvidia(benchmark, nvidia, report):
    result = benchmark.pedantic(
        lambda: exp_fig11_model_error(nvidia), rounds=1, iterations=1
    )
    report(
        "fig24_model_error_nvidia",
        banner("Fig 24: relative error in GPL runtime estimation (NVIDIA)")
        + "\n"
        + format_table(
            ["query", "measured ms", "estimated ms", "rel. error"],
            [
                [
                    name,
                    round(row["measured_ms"], 3),
                    round(row["estimated_ms"], 3),
                    round(row["relative_error"], 3),
                ]
                for name, row in result.items()
            ],
        ),
    )
    errors = [row["relative_error"] for row in result.values()]
    # With 16 concurrent kernels the ideal-concurrency assumption of
    # Eq. 9 bites harder than on AMD: deep, skewed chains (Q7/Q9) are
    # underestimated the most (see EXPERIMENTS.md).
    assert all(error < 0.7 for error in errors)
    assert sum(errors) / len(errors) < 0.4
