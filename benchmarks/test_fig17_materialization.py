"""Fig 17: intermediate results materialized in global memory, GPL / KBE.

Expected shape: GPL materializes only segment outputs (hash tables,
aggregates), a small fraction of KBE's per-kernel materialization
(paper: 15–33%).
"""

from repro.bench import banner, exp_fig17_materialization, format_table


def test_fig17_materialization(benchmark, amd, report):
    result = benchmark.pedantic(
        lambda: exp_fig17_materialization(amd), rounds=1, iterations=1
    )
    report(
        "fig17_materialization",
        banner("Fig 17: GPL materialized intermediates (normalized to KBE)")
        + "\n"
        + format_table(
            ["query", "GPL / KBE"],
            [[name, round(ratio, 3)] for name, ratio in result.items()],
        ),
    )
    for name, ratio in result.items():
        assert ratio < 0.4, f"{name}: GPL must materialize far less than KBE"
        assert ratio > 0.0, f"{name}: blocking kernels still materialize"
