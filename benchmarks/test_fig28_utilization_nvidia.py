"""Fig 28 (Appendix A.3.2): improved resource utilization for Q8, NVIDIA.

Expected shape: GPL achieves a better-balanced use of compute and memory
units than KBE on the K40 preset.
"""

from repro.bench import banner, exp_fig19_utilization, format_table


def test_fig28_utilization_nvidia(benchmark, nvidia, report):
    result = benchmark.pedantic(
        lambda: exp_fig19_utilization(nvidia, queries=("Q8",)),
        rounds=1,
        iterations=1,
    )
    row = result["Q8"]
    report(
        "fig28_utilization_nvidia",
        banner("Fig 28: Q8 resource utilization, KBE vs GPL (NVIDIA)")
        + "\n"
        + format_table(
            ["engine", "VALUBusy", "MemUnitBusy"],
            [
                ["KBE", round(row["KBE_valu"], 3), round(row["KBE_mem"], 3)],
                ["GPL", round(row["GPL_valu"], 3), round(row["GPL_mem"], 3)],
            ],
        ),
    )
    # GPL performs a fraction of KBE's raw operations in far less time;
    # the robust utilization claim is that both units stay as busy as
    # under KBE (within tolerance) while the query finishes much faster —
    # i.e. the *useful* utilization rises.
    assert row["GPL_valu"] >= 0.7 * row["KBE_valu"]
    assert row["GPL_mem"] >= 0.7 * row["KBE_mem"]
