"""Beyond the paper: the Star Schema Benchmark flight suite, KBE vs GPL.

SSB's queries are pure star joins — each lowers to exactly the pipeline
shape GPL was designed for — so the workload is a natural generality
check: the paper's improvement should carry over to all four flights.
"""

import pytest

from repro.core import GPLEngine
from repro.gpu import AMD_A10
from repro.kbe import KBEEngine
from repro.ssb import SSB_QUERIES, generate_ssb

SCALE = 0.05


@pytest.fixture(scope="module")
def flights():
    database = generate_ssb(scale=SCALE)
    kbe = KBEEngine(database, AMD_A10)
    gpl = GPLEngine(database, AMD_A10)
    rows = {}
    for name, spec in SSB_QUERIES.items():
        kbe_run = kbe.execute(spec)
        gpl_run = gpl.execute(spec)
        assert kbe_run.approx_equals(gpl_run), f"{name}: engines disagree"
        rows[name] = (kbe_run.elapsed_ms, gpl_run.elapsed_ms)
    return rows


def test_ssb_flights(benchmark, flights, report):
    rows = benchmark.pedantic(lambda: flights, rounds=1, iterations=1)
    lines = [f"SSB at scale {SCALE} on AMD (KBE vs GPL):"]
    for name, (kbe_ms, gpl_ms) in rows.items():
        lines.append(
            f"  {name:6s} KBE {kbe_ms:7.2f} ms  GPL {gpl_ms:7.2f} ms  "
            f"{kbe_ms / gpl_ms:5.2f}x"
        )
    total_kbe = sum(kbe for kbe, _ in rows.values())
    total_gpl = sum(gpl for _, gpl in rows.values())
    lines.append(
        f"  TOTAL  KBE {total_kbe:7.2f} ms  GPL {total_gpl:7.2f} ms  "
        f"{total_kbe / total_gpl:5.2f}x"
    )
    report("ssb_flights", "\n".join(lines))

    # GPL wins every flight and the workload overall by a healthy margin.
    for name, (kbe_ms, gpl_ms) in rows.items():
        assert gpl_ms < kbe_ms, name
    assert total_kbe / total_gpl > 1.5
