"""Fig 14: model relative error across work-group settings S1–S7 (Q8).

Expected shape: nominal error at every setting in the doubling ladder.
"""

import pytest

from repro.bench import banner, exp_fig14_15_workgroups, format_table


@pytest.fixture(scope="module")
def sweep(amd):
    return exp_fig14_15_workgroups(amd)


def test_fig14_wg_error(benchmark, sweep, report):
    result = benchmark.pedantic(lambda: sweep, rounds=1, iterations=1)
    rows = result["rows"]
    report(
        "fig14_wg_error",
        banner("Fig 14: model relative error vs work-group setting (Q8, AMD)")
        + "\n"
        + format_table(
            ["setting", "wg/kernel", "relative error"],
            [
                [row["setting"], row["workgroups"], round(row["relative_error"], 3)]
                for row in rows
            ],
        ),
    )
    errors = [row["relative_error"] for row in rows]
    assert all(error < 0.4 for error in errors)
    assert sum(errors) / len(errors) < 0.25
