"""Fig 18 companion: reproducing the *growing* GPL curve with adaptive
fact selection.

The paper's Q14 plan hash-builds the filtered LINEITEM side, so its
materialized intermediate grows with the predicate selectivity (0.05x to
0.22x of the input).  Our default optimizer builds on the dimension
table (flat curve, see test_fig18_gpl_intermediate); with
``adaptive_fact=True`` the optimizer may anchor the chain on PART below
the size crossover, and the paper's growth mechanism appears.
"""

import pytest

from repro.core import GPLEngine
from repro.gpu import AMD_A10
from repro.tpch import generate_database, q14

SELECTIVITIES = (0.003, 0.01, 0.02, 0.03)


@pytest.fixture(scope="module")
def sweep():
    database = generate_database(scale=0.05)
    input_bytes = float(
        database.table("lineitem").nbytes + database.table("part").nbytes
    )
    engine = GPLEngine(database, AMD_A10, adaptive_fact=True)
    rows = []
    for selectivity in SELECTIVITIES:
        run = engine.execute(q14(selectivity=selectivity))
        plan = engine.prepare(q14(selectivity=selectivity))
        rows.append(
            {
                "selectivity": selectivity,
                "anchor": plan.pipeline("main").source_table,
                "normalized": run.counters.bytes_materialized / input_bytes,
            }
        )
    return rows


def test_fig18b_adaptive_fact(benchmark, sweep, report):
    rows = benchmark.pedantic(lambda: sweep, rounds=1, iterations=1)
    report(
        "fig18b_adaptive_fact",
        "Q14 GPL materialized intermediates with adaptive fact (AMD):\n"
        + "\n".join(
            f"  sel={row['selectivity']:<6} anchor={row['anchor']:<9} "
            f"intermediates/input={row['normalized']:.5f}"
            for row in rows
        ),
    )
    # Below the crossover the chain anchors on part...
    assert rows[0]["anchor"] == "part"
    # ...and the materialized hash table (the filtered fact) grows with
    # selectivity — the paper's Fig 18 mechanism.
    part_anchored = [row for row in rows if row["anchor"] == "part"]
    assert len(part_anchored) >= 2
    sizes = [row["normalized"] for row in part_anchored]
    assert all(b > a for a, b in zip(sizes, sizes[1:]))
