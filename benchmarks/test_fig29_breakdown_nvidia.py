"""Fig 29 (Appendix A.3.2): Q8 execution-time breakdown on NVIDIA.

Expected shape: GPL's communication share (Mem + DC + Delay) is smaller
than KBE's memory-stall share (paper: 18% vs up to 32%).
"""

from repro.bench import banner, exp_fig20_breakdown, format_table


def test_fig29_breakdown_nvidia(benchmark, nvidia, report):
    result = benchmark.pedantic(
        lambda: exp_fig20_breakdown(nvidia), rounds=1, iterations=1
    )
    categories = ["Compute", "Mem_cost", "DC_cost", "Delay"]
    report(
        "fig29_breakdown_nvidia",
        banner("Fig 29: Q8 execution-time breakdown (NVIDIA)")
        + "\n"
        + format_table(
            ["engine"] + categories + ["communication share"],
            [
                [engine]
                + [round(result[engine][c], 3) for c in categories]
                + [round(result[engine]["communication_share"], 3)]
                for engine in ("KBE", "GPL")
            ],
        ),
    )
    assert result["KBE"]["DC_cost"] == 0.0
    assert result["GPL"]["DC_cost"] > 0.0
    assert result["GPL"]["Compute"] > result["KBE"]["Compute"]
