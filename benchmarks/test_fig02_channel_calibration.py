"""Fig 2: channel throughput vs data size and channel count (AMD).

Expected shapes: throughput rises from 512K to about 1M integers
("the channel is not fully utilized" for small inputs), then degrades
as the working set outgrows the data cache ("cache thrashing"); more
channels help up to 16.
"""

from repro.bench import banner, exp_fig2_channel_calibration, format_table


def test_fig02_channel_calibration(benchmark, amd, report):
    result = benchmark.pedantic(
        lambda: exp_fig2_channel_calibration(amd), rounds=1, iterations=1
    )
    sizes = [n for n, _ in result[1]]
    rows = []
    for index, size in enumerate(sizes):
        rows.append(
            [f"{size // 1024}K ints"]
            + [round(result[n][index][1], 3) for n in sorted(result)]
        )
    report(
        "fig02_channel_calibration",
        banner("Fig 2: channel throughput (GB/s) on AMD, 16B packets")
        + "\n"
        + format_table(
            ["N"] + [f"{n} ch" for n in sorted(result)], rows
        ),
    )
    for n, series in result.items():
        throughputs = [value for _, value in series]
        # Rise then fall: the peak is interior, and the largest input is
        # slower than the peak (cache thrashing).
        peak = max(range(len(throughputs)), key=throughputs.__getitem__)
        assert 0 < peak < len(throughputs) - 1 or throughputs[0] < max(
            throughputs
        )
        assert throughputs[-1] < max(throughputs)
    # More channels help: 16 channels beat 1 channel at every size.
    assert all(
        b[1] > a[1] for a, b in zip(result[1], result[16])
    )
