"""Fig 12: overall query performance with varying tile sizes (Q8, AMD).

Expected shape: a U — small tiles underutilize the pipeline (dispatch
overhead, channel inefficiency), large tiles thrash the cache — with
the model's chosen tile (the star) near the measured bottom.

This sweep needs inputs several times larger than the biggest tile, so
it runs at an elevated scale factor.
"""

import pytest

from repro.bench import ExperimentContext, banner, exp_fig12_13_tile_sweep, format_table
from repro.gpu import AMD_A10

SWEEP_SCALE = 0.3


@pytest.fixture(scope="module")
def sweep():
    context = ExperimentContext(device=AMD_A10, scale=SWEEP_SCALE)
    return exp_fig12_13_tile_sweep(context)


def test_fig12_tile_size(benchmark, sweep, report):
    result = benchmark.pedantic(lambda: sweep, rounds=1, iterations=1)
    rows = result["rows"]
    report(
        "fig12_tile_size",
        banner("Fig 12: Q8 performance vs tile size (AMD), normalized to 256KB")
        + "\n"
        + format_table(
            ["tile", "normalized time", "normalized estimate"],
            [
                [
                    f"{row['tile_bytes'] // 1024}KB",
                    round(row["normalized_time"], 3),
                    round(row["normalized_estimate"], 3),
                ]
                for row in rows
            ],
        )
        + f"\nmodel pick (star): {result['model_tile_bytes'] // 1024}KB"
        + f"\nmeasured best:     {result['measured_best_tile_bytes'] // 1024}KB",
    )
    times = [row["normalized_time"] for row in rows]
    # U-shape: the largest tile is worse than the best interior point.
    best = min(times)
    assert times[-1] > best * 1.05
    # The model's pick performs close to the measured optimum.
    model_row = next(
        row for row in rows if row["tile_bytes"] == result["model_tile_bytes"]
    )
    assert model_row["normalized_time"] <= best * 1.25
