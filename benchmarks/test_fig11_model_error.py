"""Fig 11: relative error in estimating GPL runtime (AMD, optimal config).

Expected shape: the analytical model predicts within a modest relative
error for every query and "generally underestimates the execution time"
(Section 5.2) because Eq. 9 assumes ideal concurrency.
"""

from repro.bench import banner, exp_fig11_model_error, format_table


def test_fig11_model_error(benchmark, amd, report):
    result = benchmark.pedantic(
        lambda: exp_fig11_model_error(amd), rounds=1, iterations=1
    )
    report(
        "fig11_model_error",
        banner("Fig 11: relative error in estimating GPL runtime (AMD)")
        + "\n"
        + format_table(
            ["query", "measured ms", "estimated ms", "rel. error", "under?"],
            [
                [
                    name,
                    round(row["measured_ms"], 3),
                    round(row["estimated_ms"], 3),
                    round(row["relative_error"], 3),
                    bool(row["underestimated"]),
                ]
                for name, row in result.items()
            ],
        ),
    )
    errors = [row["relative_error"] for row in result.values()]
    assert all(error < 0.5 for error in errors)
    assert sum(errors) / len(errors) < 0.3
    # Underestimation is the typical direction.
    underestimates = sum(row["underestimated"] for row in result.values())
    assert underestimates >= len(result) / 2
