"""Fig 18: size of intermediate results in GPL with varying selectivity.

Expected shape: unlike KBE (Fig 3), GPL's materialized volume stays far
below the input at every selectivity — at 100% selectivity the paper
measures 0.22x the input for GPL versus 1.38x for KBE.
"""

from repro.bench import banner, exp_fig18_gpl_intermediate, format_table


def test_fig18_gpl_intermediate(benchmark, amd, report):
    rows = benchmark.pedantic(
        lambda: exp_fig18_gpl_intermediate(amd), rounds=1, iterations=1
    )
    report(
        "fig18_gpl_intermediate",
        banner("Fig 18: GPL vs KBE intermediates / input (Q14)")
        + "\n"
        + format_table(
            ["selectivity", "GPL", "KBE"],
            [[s, round(g, 3), round(k, 3)] for s, g, k in rows],
        ),
    )
    for selectivity, gpl_ratio, kbe_ratio in rows:
        assert gpl_ratio < kbe_ratio, "GPL must materialize less at every point"
        assert gpl_ratio < 0.5
    # The gap widens with selectivity: at 100% KBE exceeds input, GPL stays low.
    _, gpl_full, kbe_full = rows[-1]
    assert kbe_full > 1.0
    assert gpl_full < 0.5 * kbe_full
