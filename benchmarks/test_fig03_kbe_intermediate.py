"""Fig 3: size of intermediate results in KBE with varying selectivity.

Expected shape: the normalized intermediate volume grows with the Q14
predicate selectivity, eventually exceeding the original input size
(the paper sees this past ~75% selectivity).
"""

from repro.bench import banner, exp_fig3_kbe_intermediate, format_table


def test_fig03_kbe_intermediate(benchmark, amd, report):
    rows = benchmark.pedantic(
        lambda: exp_fig3_kbe_intermediate(amd), rounds=1, iterations=1
    )
    report(
        "fig03_kbe_intermediate",
        banner("Fig 3: KBE intermediate size / input size (Q14)")
        + "\n"
        + format_table(
            ["selectivity", "normalized intermediate"],
            [[s, round(r, 3)] for s, r in rows],
        ),
    )
    ratios = [ratio for _, ratio in rows]
    # Monotone growth in selectivity.
    assert all(b >= a for a, b in zip(ratios, ratios[1:]))
    # At full selectivity the intermediates exceed the input.
    assert ratios[-1] > 1.0
    # At 1% selectivity they are a small fraction of it.
    assert ratios[0] < 0.3
