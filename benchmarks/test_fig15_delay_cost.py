"""Fig 15: delay cost with varying resource allocations (Q8, AMD).

Expected shape: delay (normalized to S1) falls as work-groups grow,
reaches its minimum at the model-chosen setting, and worsens again once
the allocation oversubscribes the device — and the model's pick matches
the lowest-delay setting.
"""

import pytest

from repro.bench import banner, exp_fig14_15_workgroups, format_table


@pytest.fixture(scope="module")
def sweep(amd):
    return exp_fig14_15_workgroups(amd)


def test_fig15_delay_cost(benchmark, sweep, report):
    result = benchmark.pedantic(lambda: sweep, rounds=1, iterations=1)
    rows = result["rows"]
    report(
        "fig15_delay_cost",
        banner("Fig 15: delay cost vs resource allocation (Q8, AMD)")
        + "\n"
        + format_table(
            ["setting", "wg/kernel", "delay (normalized to S1)"],
            [
                [row["setting"], row["workgroups"], round(row["normalized_delay"], 3)]
                for row in rows
            ],
        )
        + f"\nmodel pick (star):    {result['model_setting']}"
        + f"\nlowest delay setting: {result['lowest_delay_setting']}",
    )
    delays = [row["normalized_delay"] for row in rows]
    # Interior minimum: some setting beats both extremes.
    best = min(delays)
    assert best < delays[0]
    assert best <= delays[-1]
    # The model's choice lands on (or adjacent to) the lowest delay.
    settings = [row["setting"] for row in rows]
    model_index = settings.index(result["model_setting"])
    lowest_index = settings.index(result["lowest_delay_setting"])
    assert abs(model_index - lowest_index) <= 1
