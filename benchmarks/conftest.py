"""Shared fixtures for the per-figure benchmarks.

Contexts are session-scoped so the generated databases and the channel
calibration are built once; each benchmark writes its report both to
stdout (visible with ``-s``) and to ``benchmarks/results/<name>.txt`` so
the paper-shaped rows survive output capturing.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.bench import DEFAULT_SCALE, ExperimentContext
from repro.gpu import AMD_A10, NVIDIA_K40

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def amd() -> ExperimentContext:
    """AMD A10 context at the default benchmark scale."""
    return ExperimentContext(device=AMD_A10, scale=DEFAULT_SCALE)


@pytest.fixture(scope="session")
def nvidia() -> ExperimentContext:
    """NVIDIA K40 context at the default benchmark scale."""
    return ExperimentContext(device=NVIDIA_K40, scale=DEFAULT_SCALE)


@pytest.fixture(scope="session")
def report():
    """Writer that persists a report and echoes it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(text)

    return write
