"""Fig 4: high communication cost in KBE query execution (Q14, AMD).

Expected shape: the memory-stall cost (Mem_cost) grows with selectivity
and stays a substantial share of the execution breakdown.
"""

from repro.bench import banner, exp_fig4_kbe_comm_cost, format_table


def test_fig04_kbe_comm_cost(benchmark, amd, report):
    rows = benchmark.pedantic(
        lambda: exp_fig4_kbe_comm_cost(amd), rounds=1, iterations=1
    )
    report(
        "fig04_kbe_comm_cost",
        banner("Fig 4: KBE memory-stall cost with varying selectivity (Q14)")
        + "\n"
        + format_table(
            ["selectivity", "Mem_cost (ms)", "share of breakdown"],
            [[s, round(ms, 3), round(share, 3)] for s, ms, share in rows],
        ),
    )
    costs = [ms for _, ms, _ in rows]
    shares = [share for _, _, share in rows]
    assert costs[-1] > costs[0]  # grows with selectivity
    assert all(share > 0.25 for share in shares)  # substantial throughout
